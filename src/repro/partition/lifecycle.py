"""Fragment lifecycle management: residency, compaction, shedding, migration.

Before this module, fragment residency was smeared across four layers: the
coordinator-side node sets and centre-ownership maps lived in
:class:`repro.stream.StreamingIdentifier`, the per-fragment update-slice
logs grew without bound next to them, the resident copies mutated inside
:mod:`repro.parallel.worker` contexts, and nothing ever *shrank* — a node
that left every owned centre's d-ball after deletions stayed resident
forever.  :class:`FragmentManager` owns the whole life of a fragment now:

* **membership via ball refcounts** — for every fragment the manager keeps
  each owned centre's current d-ball and a per-node refcount (how many
  owned balls contain the node).  A batch's recheck centres swap their old
  ball for the new one; nodes whose refcount drops to zero are *shed* from
  the resident fragment (the slice carries them in
  :attr:`FragmentUpdate.shed`), which also evicts them from the resident
  :class:`~repro.graph.index.FragmentIndex` (via the graph's delta log) and
  from any repaired :class:`~repro.matching.incremental.MatchStore` entry.
  Shedding is exact: anchored matching of a ball-local pattern at an owned
  centre only inspects the centre's d-ball (``docs/streaming.md``), and a
  shed node lies in no owned ball.
* **log compaction with checkpoints** — once a fragment's slice log
  outweighs a configurable fraction of the fragment itself, the manager
  snapshots the fragment from the authoritative graph (the resident copy
  is, invariantly, the induced subgraph on the managed node set) as a
  picklable :class:`FragmentCheckpoint` — written to ``state_dir`` when one
  is configured, shipped inline otherwise — and truncates the log.
  Sequence numbers order everything: a worker process behind the
  checkpoint installs it and replays only the remaining tail, a worker
  ahead of it ignores it, so the process pool's arbitrary task routing
  stays deterministic.
* **churn-driven re-partitioning** — when the per-fragment load skew
  crosses a threshold, ownership of *quiescent* centres (outside the
  batch's affected region, so their verdicts are provably unchanged)
  migrates from the most- to the least-loaded fragment.  Load is the sum
  of owned ball sizes (the partitioner's own balance measure) weighted by
  a smoothed per-fragment cost factor learned from the *measured* worker
  times of past rounds (:meth:`FragmentManager.record_round_timing`), so
  a fragment whose nodes are disproportionately expensive to verify —
  denser balls, hotter labels — sheds work even when its node counts look
  balanced.  Placement-only: verdicts never depend on which fragment
  verifies a centre.  The coordinator splices the
  migrated centres' stored verdict bits between the fragments' reports —
  no re-verification, no rebuild — and the ball refcounts move with them,
  shrinking the source fragment where the migration left nodes uncovered.

The worker-side half of the protocol is :func:`catch_up`: given a
:class:`FragmentLease` (base checkpoint reference + slice tail) it brings
the process-resident fragment copy to the coordinator's sequence.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Mapping, Sequence

from repro.exceptions import StreamError
from repro.graph.graph import Graph
from repro.graph.neighborhood import ball
from repro.obs.tracing import event as trace_event
from repro.partition.fragment import Fragment

NodeId = Hashable

#: ``WorkerContext.state`` key tracking the newest applied slice sequence.
APPLIED_SEQUENCE_KEY = "lifecycle-applied-sequence"


@dataclass(frozen=True)
class FragmentUpdate:
    """One fragment's slice of a global update batch (coordinator → worker).

    ``sequence`` orders the slices per fragment; a worker whose resident
    copy is behind replays every missed slice before verifying.  All fields
    are plain sorted tuples so the payload pickles small and hashes stably.
    ``shed`` carries residency-only removals: nodes still present in the
    authoritative graph that left every owned centre's d-ball and must be
    dropped from the resident copy.
    """

    sequence: int
    remove_edges: tuple = ()
    remove_nodes: tuple = ()
    add_nodes: tuple = ()  # (node, label, attrs-items)
    add_edges: tuple = ()
    relabels: tuple = ()  # (node, new label)
    shed: tuple = ()
    own_add: tuple = ()
    own_remove: tuple = ()
    recheck: tuple = ()

    @property
    def mutates(self) -> bool:
        """Whether replaying this slice changes the fragment graph at all."""
        return bool(
            self.remove_edges
            or self.remove_nodes
            or self.add_nodes
            or self.add_edges
            or self.relabels
            or self.shed
        )

    @property
    def weight(self) -> int:
        """Number of shipped operations (the compaction trigger's measure)."""
        return (
            len(self.remove_edges)
            + len(self.remove_nodes)
            + len(self.add_nodes)
            + len(self.add_edges)
            + len(self.relabels)
            + len(self.shed)
        )


@dataclass(frozen=True)
class FragmentCheckpoint:
    """A picklable snapshot of one fragment at a slice sequence number.

    Built from the authoritative graph (the resident fragment copy is the
    induced subgraph on the managed node set, so the snapshot is
    byte-identical to a resident copy that replayed every slice), installed
    by :func:`catch_up` into workers whose applied sequence is behind
    :attr:`sequence`.
    """

    fragment_index: int
    sequence: int
    name: str
    delta_log_size: int
    nodes: tuple  # (node, label, attrs-items), sorted
    edges: tuple  # (source, target, label), sorted
    owned_centers: tuple

    @classmethod
    def capture(
        cls,
        graph: Graph,
        node_set: set,
        owned_centers: set,
        fragment_index: int,
        sequence: int,
        name: str,
    ) -> "FragmentCheckpoint":
        """Snapshot the induced subgraph on *node_set* of *graph*."""
        nodes = tuple(
            sorted(
                (
                    (
                        node,
                        graph.node_label(node),
                        tuple(sorted(graph.node_attrs(node).items())),
                    )
                    for node in node_set
                ),
                key=str,
            )
        )
        edges = tuple(
            sorted(
                (
                    (node, edge.target, edge.label)
                    for node in node_set
                    for edge in graph.out_edges(node)
                    if edge.target in node_set
                ),
                key=str,
            )
        )
        return cls(
            fragment_index=fragment_index,
            sequence=sequence,
            name=name,
            delta_log_size=graph.delta_log_size,
            nodes=nodes,
            edges=edges,
            owned_centers=tuple(sorted(owned_centers, key=str)),
        )

    def build_graph(self) -> Graph:
        """Materialise the snapshot as a fresh fragment graph."""
        graph = Graph(name=self.name, delta_log_size=self.delta_log_size)
        with graph.batch_update():
            for node, label, attrs in self.nodes:
                graph.add_node(node, label, dict(attrs) or None)
            for source, target, label in self.edges:
                graph.add_edge(source, target, label)
        # Construction is not an update (same contract as Graph.copy).
        graph._delta_log.clear()
        return graph

    def build_fragment(self) -> Fragment:
        """Materialise the snapshot as a whole :class:`Fragment`."""
        return Fragment(
            index=self.fragment_index,
            graph=self.build_graph(),
            owned_centers=set(self.owned_centers),
            sequence=self.sequence,
        )

    def install(self, fragment: Fragment) -> None:
        """Replace *fragment*'s resident state with this snapshot in place."""
        fragment.graph = self.build_graph()
        fragment.owned_centers = set(self.owned_centers)
        fragment.sequence = self.sequence

    def save(self, path: Path | str) -> Path:
        """Write the snapshot as a pickle file; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as handle:
            pickle.dump(self, handle)
        return path

    @classmethod
    def load(cls, path: Path | str) -> "FragmentCheckpoint":
        """Read a snapshot written by :meth:`save`."""
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
        if not isinstance(checkpoint, cls):
            raise StreamError(f"{path} does not hold a FragmentCheckpoint")
        return checkpoint


@dataclass(frozen=True)
class FragmentLease:
    """What one round ships a worker about its fragment's state.

    ``base_sequence`` is the sequence of the newest compaction checkpoint
    (0 when the log still reaches back to pool start); exactly one of
    ``checkpoint`` (inline) / ``checkpoint_path`` (``state_dir`` form) is
    set when ``base_sequence > 0``.  ``updates`` is the slice tail after the
    base.  Any worker process — however stale its resident copy — catches
    up deterministically: install the base if behind it, replay the tail.
    """

    base_sequence: int = 0
    checkpoint: FragmentCheckpoint | None = None
    checkpoint_path: str | None = None
    updates: tuple[FragmentUpdate, ...] = ()


def apply_fragment_update(fragment: Fragment, update: FragmentUpdate) -> None:
    """Replay one slice on a fragment-resident graph (one version tick)."""
    graph = fragment.graph
    if update.mutates:
        with graph.batch_update():
            for source, target, label in update.remove_edges:
                graph.remove_edge(source, target, label)
            for node in update.remove_nodes:
                graph.remove_node(node)
            for node, label, attrs in update.add_nodes:
                graph.add_node(node, label, dict(attrs) or None)
            for source, target, label in update.add_edges:
                graph.add_edge(source, target, label)
            for node, label in update.relabels:
                graph.relabel_node(node, label)
            for node in update.shed:
                graph.remove_node(node)
    fragment.owned_centers.difference_update(update.own_remove)
    fragment.owned_centers.update(update.own_add)
    fragment.sequence = update.sequence


def catch_up(context, lease: FragmentLease) -> Fragment:
    """Bring a worker's resident fragment copy up to the lease's sequence.

    The applied-slice counter lives in the pool-lifetime
    :class:`~repro.parallel.worker.WorkerContext`, so on the process backend
    — where any pool process may serve any fragment — a stale resident copy
    deterministically installs the base checkpoint (only if it is behind
    it) and replays exactly the slices it missed.
    """
    fragment = context.fragment
    applied = context.state.get(APPLIED_SEQUENCE_KEY)
    if applied is None:
        applied = fragment.sequence
    if applied < lease.base_sequence:
        checkpoint = lease.checkpoint
        if checkpoint is None:
            if lease.checkpoint_path is None:
                raise StreamError(
                    f"fragment {fragment.index} is behind sequence "
                    f"{lease.base_sequence} but the lease carries no checkpoint"
                )
            checkpoint = FragmentCheckpoint.load(lease.checkpoint_path)
        checkpoint.install(fragment)
        applied = checkpoint.sequence
    for update in lease.updates:
        if update.sequence <= applied:
            continue
        apply_fragment_update(fragment, update)
        applied = update.sequence
    context.state[APPLIED_SEQUENCE_KEY] = applied
    return fragment


@dataclass
class BatchPlan:
    """What :meth:`FragmentManager.derive_batch` decided for one batch."""

    updates: dict[int, FragmentUpdate] = field(default_factory=dict)
    migrations: tuple = ()  # (center, src fragment, dst fragment)
    rechecked_centers: int = 0
    owned_added: int = 0
    owned_removed: int = 0
    entered_nodes: int = 0
    shed_nodes: int = 0
    shipped_edges: int = 0


class FragmentManager:
    """Coordinator-side owner of every fragment's residency and logs.

    Parameters
    ----------
    graph:
        The authoritative data graph (already partitioned).
    fragments:
        The fragments of :func:`repro.partition.partition_graph`; their node
        sets must equal the union of their owned centres' d-balls (the
        partitioner's contract), which seeds the refcounts.
    max_radius:
        Ball radius ``d`` every fragment preserves around its owned centres.
    x_label:
        Search condition of the candidate centres (nodes gaining/losing this
        label join/leave the ownership map).
    config:
        A :class:`repro.stream.StreamConfig` (duck-typed: only the
        lifecycle fields are read).
    """

    def __init__(
        self,
        graph: Graph,
        fragments: Sequence[Fragment],
        max_radius: int,
        x_label: str,
        config,
    ) -> None:
        self.graph = graph
        self.fragments = list(fragments)
        self.max_radius = max_radius
        self.x_label = x_label
        self.config = config
        self._owner: dict[NodeId, int] = {}
        self._balls: dict[NodeId, set] = {}
        self._refcounts: dict[int, dict[NodeId, int]] = {}
        self._node_sets: dict[int, set] = {}
        self._logs: dict[int, list[FragmentUpdate]] = {}
        self._bases: dict[int, FragmentCheckpoint | None] = {}
        self._base_paths: dict[int, str | None] = {}
        self._base_sequences: dict[int, int] = {}
        # Smoothed relative verification cost per fragment (1.0 = average),
        # learned from measured round worker times; see record_round_timing.
        self._cost_factors: dict[int, float] = {}
        self._sequence = 0
        for fragment in self.fragments:
            index = fragment.index
            refcounts: dict[NodeId, int] = {}
            for center in fragment.owned_centers:
                self._owner[center] = index
                center_ball = ball(graph, center, max_radius)
                self._balls[center] = center_ball
                for node in center_ball:
                    refcounts[node] = refcounts.get(node, 0) + 1
            self._refcounts[index] = refcounts
            self._node_sets[index] = set(refcounts)
            self._logs[index] = []
            self._bases[index] = None
            self._base_paths[index] = None
            self._base_sequences[index] = fragment.sequence

    # ------------------------------------------------------------------
    # membership / ownership accessors
    # ------------------------------------------------------------------
    @property
    def sequence(self) -> int:
        """Newest derived slice sequence number."""
        return self._sequence

    def owner_of(self, center: NodeId) -> int | None:
        """The fragment owning *center*, or ``None``."""
        return self._owner.get(center)

    def owned_centers(self, index: int) -> set:
        """Centres currently owned by fragment *index*."""
        return {center for center, owner in self._owner.items() if owner == index}

    def node_set(self, index: int) -> frozenset:
        """Current resident node set of fragment *index* (read-only view)."""
        return frozenset(self._node_sets[index])

    def log_weight(self, index: int) -> int:
        """Total shipped operations currently retained in the slice log."""
        return sum(update.weight for update in self._logs[index])

    def fragment_load(self, index: int) -> int:
        """Sum of owned ball sizes (the partitioner's balance measure).

        A centre gained in the current batch has no stored ball yet and
        counts as zero until its first recheck stores one.
        """
        return sum(
            len(self._balls.get(center, ()))
            for center, owner in self._owner.items()
            if owner == index
        )

    #: Exponential-smoothing weight of the newest measured round in the
    #: per-fragment cost factors (0 < α ≤ 1; 1 = trust only the last round).
    COST_SMOOTHING = 0.5

    #: Rounds whose summed worker time is below this carry no usable
    #: signal — at sub-50ms scale scheduler jitter dominates the per-node
    #: cost ratios, and letting it through makes migration planning (and
    #: every test built on the pure node-count policy) nondeterministic.
    MIN_ROUND_SECONDS = 0.05

    def record_round_timing(self, worker_seconds: Mapping[int, float]) -> None:
        """Fold one round's measured worker times into the cost factors.

        *worker_seconds* maps fragment index → that round's measured worker
        time.  Each fragment's cost per ball node is normalized by the round
        mean — factors are *relative*, so a uniformly fast or slow machine
        learns no skew — and folded into the stored factor by exponential
        smoothing.  Rounds shorter than :data:`MIN_ROUND_SECONDS` in total
        are discarded as noise.  :meth:`_plan_migrations` weighs owned-ball
        sizes by these factors; the factors influence placement only, never
        verdicts, so answer determinism is unaffected by timing noise.
        """
        per_unit: dict[int, float] = {}
        measured_total = 0.0
        for index, seconds in worker_seconds.items():
            if index not in self._node_sets or seconds < 0:
                continue
            measured_total += seconds
            per_unit[index] = seconds / max(1, self.fragment_load(index))
        if not per_unit or measured_total < self.MIN_ROUND_SECONDS:
            return
        mean = sum(per_unit.values()) / len(per_unit)
        if mean <= 0:
            return
        for index, unit_cost in per_unit.items():
            observed = unit_cost / mean
            previous = self._cost_factors.get(index, 1.0)
            self._cost_factors[index] = (
                (1.0 - self.COST_SMOOTHING) * previous
                + self.COST_SMOOTHING * observed
            )

    def cost_factor(self, index: int) -> float:
        """Smoothed relative verification cost of fragment *index* (1.0 = average)."""
        return self._cost_factors.get(index, 1.0)

    def effective_load(self, index: int) -> float:
        """Owned-ball load weighted by the fragment's observed cost factor."""
        return self.fragment_load(index) * self.cost_factor(index)

    def resident_summary(self) -> dict:
        """Coordinator-side residency metrics (the churn bench's row source)."""
        nodes = sum(len(node_set) for node_set in self._node_sets.values())
        log_ops = sum(self.log_weight(fragment.index) for fragment in self.fragments)
        log_entries = sum(len(self._logs[fragment.index]) for fragment in self.fragments)
        return {
            "resident_nodes": nodes,
            "log_ops": log_ops,
            "log_entries": log_entries,
            "loads": {
                fragment.index: self.fragment_load(fragment.index)
                for fragment in self.fragments
            },
            "cost_factors": {
                fragment.index: self.cost_factor(fragment.index)
                for fragment in self.fragments
            },
        }

    # ------------------------------------------------------------------
    # per-batch derivation
    # ------------------------------------------------------------------
    def derive_batch(self, delta, region: set) -> BatchPlan:
        """Digest one applied batch: ownership, migration, slices, refcounts.

        *delta* is the batch's recorded :class:`~repro.graph.graph.GraphDelta`
        and *region* the d-ball of its touched set on the post-update graph.
        Appends one :class:`FragmentUpdate` per fragment to the logs and
        returns the :class:`BatchPlan` (slices + counters + migrations).
        """
        graph = self.graph
        self._sequence += 1
        plan = BatchPlan()
        indexes = [fragment.index for fragment in self.fragments]
        own_add: dict[int, set] = {index: set() for index in indexes}
        own_remove: dict[int, set] = {index: set() for index in indexes}

        # (1) slice removal/relabel fields against pre-batch membership.
        removals: dict[int, tuple] = {}
        for index in indexes:
            node_set = self._node_sets[index]
            remove_edges = tuple(
                sorted(
                    (
                        edge
                        for edge in delta.removed_edges
                        if edge[0] in node_set and edge[1] in node_set
                    ),
                    key=str,
                )
            )
            remove_nodes = tuple(
                sorted((node for node in delta.removed_nodes if node in node_set), key=str)
            )
            relabels = tuple(
                sorted(
                    (
                        (node, graph.node_label(node))
                        for node in delta.relabeled_nodes
                        if node in node_set
                    ),
                    key=str,
                )
            )
            removals[index] = (remove_edges, remove_nodes, relabels)

        # Refcount bookkeeping; entered/vanished are derived from the nodes
        # whose count changed, so a release-then-retain inside one batch
        # (a ball swap keeping the node) cancels out.
        touched_rc: dict[int, set] = {index: set() for index in indexes}
        before: dict[int, dict] = {index: {} for index in indexes}

        def release(index: int, nodes) -> None:
            refcounts = self._refcounts[index]
            snapshot = before[index]
            dirty = touched_rc[index]
            for node in nodes:
                if node not in snapshot:
                    snapshot[node] = refcounts.get(node, 0)
                dirty.add(node)
                count = refcounts.get(node, 0) - 1
                if count <= 0:
                    refcounts.pop(node, None)
                else:
                    refcounts[node] = count

        def retain(index: int, nodes) -> None:
            refcounts = self._refcounts[index]
            snapshot = before[index]
            dirty = touched_rc[index]
            for node in nodes:
                if node not in snapshot:
                    snapshot[node] = refcounts.get(node, 0)
                dirty.add(node)
                refcounts[node] = refcounts.get(node, 0) + 1

        # (2) centre-role maintenance: only touched nodes can change role.
        # A lost centre's stored ball is released from its old owner (which
        # may shed the nodes only it was covering).
        for node in sorted(delta.touched, key=str):
            owner = self._owner.get(node)
            is_center = graph.has_node(node) and graph.node_label(node) == self.x_label
            if owner is not None and not is_center:
                del self._owner[node]
                own_remove[owner].add(node)
                old_ball = self._balls.pop(node, None)
                if old_ball is not None:
                    release(owner, old_ball)
            elif owner is None and is_center:
                chosen = self._assign_owner(node)
                self._owner[node] = chosen
                own_add[chosen].add(node)
        plan.owned_added = sum(len(centers) for centers in own_add.values())
        plan.owned_removed = sum(len(centers) for centers in own_remove.values())

        # (3) churn-driven re-partitioning over quiescent centres: the
        # stored ball moves wholesale (it is provably current — the centre
        # is outside the affected region).
        migrations = self._plan_migrations(region)
        if migrations:
            trace_event("lifecycle.migration", centers=len(migrations))
        for center, src, dst in migrations:
            self._owner[center] = dst
            own_remove[src].add(center)
            own_add[dst].add(center)
            moved_ball = self._balls[center]
            release(src, moved_ball)
            retain(dst, moved_ball)
        plan.migrations = tuple(migrations)

        # (4) recheck centres (owned, inside the affected region): swap the
        # stored ball for the current one.  Freshly gained centres have no
        # stored ball yet; they are in the region by construction (only
        # touched nodes gain the centre label, and touched ⊆ region).
        recheck: dict[int, set] = {index: set() for index in indexes}
        for center, owner in self._owner.items():
            if center in region:
                recheck[owner].add(center)
        for index in indexes:
            for center in sorted(recheck[index], key=str):
                old_ball = self._balls.get(center)
                if old_ball is not None:
                    release(index, old_ball)
                new_ball = ball(graph, center, self.max_radius)
                self._balls[center] = new_ball
                retain(index, new_ball)

        # (5) membership deltas and the shipped slices.
        for index in indexes:
            refcounts = self._refcounts[index]
            node_set = self._node_sets[index]
            entered = set()
            vanished = set()
            for node in touched_rc[index]:
                was_resident = before[index][node] > 0
                is_resident = node in refcounts
                if is_resident and not was_resident:
                    entered.add(node)
                elif was_resident and not is_resident:
                    vanished.add(node)
            remove_edges, remove_nodes, relabels = removals[index]
            shed = tuple(
                sorted((node for node in vanished if graph.has_node(node)), key=str)
            )
            add_nodes = tuple(
                sorted(
                    (
                        (
                            node,
                            graph.node_label(node),
                            tuple(sorted(graph.node_attrs(node).items())),
                        )
                        for node in entered
                    ),
                    key=str,
                )
            )
            add_edge_set = {
                edge
                for edge in delta.added_edges
                if edge[0] in refcounts and edge[1] in refcounts
            }
            for node in entered:
                for edge in graph.out_edges(node):
                    if edge.target in refcounts:
                        add_edge_set.add((node, edge.target, edge.label))
                for edge in graph.in_edges(node):
                    if edge.source in refcounts:
                        add_edge_set.add((edge.source, node, edge.label))
            node_set.difference_update(vanished)
            node_set.difference_update(remove_nodes)
            node_set.update(entered)
            update = FragmentUpdate(
                sequence=self._sequence,
                remove_edges=remove_edges,
                remove_nodes=remove_nodes,
                add_nodes=add_nodes,
                add_edges=tuple(sorted(add_edge_set, key=str)),
                relabels=relabels,
                shed=shed,
                own_add=tuple(sorted(own_add[index], key=str)),
                own_remove=tuple(sorted(own_remove[index], key=str)),
                recheck=tuple(sorted(recheck[index], key=str)),
            )
            self._logs[index].append(update)
            plan.updates[index] = update
            plan.rechecked_centers += len(recheck[index])
            plan.entered_nodes += len(entered)
            plan.shed_nodes += len(shed)
            plan.shipped_edges += len(add_edge_set) + len(remove_edges)
        return plan

    def _assign_owner(self, center: NodeId) -> int:
        """Fragment for a freshly appeared centre: most of its ball resident.

        Ownership placement only affects which worker does the centre's
        work — never the answer — so the tie-break just balances load
        deterministically (fewest owned centres, then lowest index).
        """
        center_ball = ball(self.graph, center, self.max_radius)
        owned_counts: dict[int, int] = {
            fragment.index: 0 for fragment in self.fragments
        }
        for owner in self._owner.values():
            owned_counts[owner] = owned_counts.get(owner, 0) + 1
        best_index = None
        best_cost = None
        for fragment in self.fragments:
            index = fragment.index
            overlap = len(center_ball & self._node_sets[index])
            cost = (-overlap, owned_counts.get(index, 0), index)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = index
        return best_index

    # ------------------------------------------------------------------
    # churn-driven re-partitioning
    # ------------------------------------------------------------------
    def _plan_migrations(self, region: set) -> list[tuple]:
        """Ownership moves levelling the load skew, quiescent centres only.

        A migrated centre must lie outside the batch's affected *region*:
        its verdicts are then provably unchanged, so the coordinator can
        splice its stored report bits between fragments instead of
        re-verifying.  Loads are owned-ball sizes weighted by the smoothed
        per-fragment cost factors of :meth:`record_round_timing` (all 1.0
        until a round has been measured, reproducing the pure node-count
        policy).  Deterministic given the manager state; the cost factors
        themselves carry measured timings, which only ever steer placement.
        """
        config = self.config
        if (
            len(self.fragments) < 2
            or config.rebalance_max_moves <= 0
            or config.rebalance_skew >= 1.0
        ):
            return []
        loads = {
            fragment.index: self.effective_load(fragment.index)
            for fragment in self.fragments
        }
        moves: list[tuple] = []
        moved: set = set()
        for _ in range(config.rebalance_max_moves):
            src = max(loads, key=lambda index: (loads[index], index))
            dst = min(loads, key=lambda index: (loads[index], index))
            if src == dst or loads[src] <= 0:
                break
            skew = (loads[src] - loads[dst]) / loads[src]
            if skew <= config.rebalance_skew:
                break
            gap = loads[src] - loads[dst]
            factor_src = self.cost_factor(src)
            factor_dst = self.cost_factor(dst)
            candidates = sorted(
                (len(self._balls[center]), str(center), center)
                for center, owner in self._owner.items()
                if owner == src
                and center not in region
                and center not in moved
                and center in self._balls
            )
            # Move the largest ball whose load shift still shrinks the gap
            # (shed + gained ≤ gap guarantees monotone improvement, so
            # migration never oscillates; with unit factors this is the
            # classic 2·size ≤ gap rule).
            chosen = None
            for size, _, center in reversed(candidates):
                if size * factor_src + size * factor_dst <= gap:
                    chosen = (center, size)
                    break
            if chosen is None:
                break
            center, size = chosen
            moves.append((center, src, dst))
            moved.add(center)
            loads[src] -= size * factor_src
            loads[dst] += size * factor_dst
        return moves

    # ------------------------------------------------------------------
    # log compaction
    # ------------------------------------------------------------------
    def maybe_compact(self) -> list[int]:
        """Checkpoint + truncate every log that outgrew its fragment.

        Returns the indexes of the fragments that were compacted.  With a
        ``state_dir`` configured the checkpoint is written to disk and only
        its path travels in later leases; otherwise it ships inline.
        """
        compacted: list[int] = []
        fraction = self.config.checkpoint_log_fraction
        state_dir = getattr(self.config, "state_dir", None)
        for fragment in self.fragments:
            index = fragment.index
            log = self._logs[index]
            if not log:
                continue
            weight = sum(update.weight for update in log)
            if weight <= fraction * max(1, len(self._node_sets[index])):
                continue
            self.compact_fragment(index, state_dir)
            compacted.append(index)
        return compacted

    def compact_fragment(self, index: int, state_dir: Path | None = None) -> FragmentCheckpoint:
        """Snapshot fragment *index* at the current sequence; truncate its log."""
        checkpoint = FragmentCheckpoint.capture(
            self.graph,
            self._node_sets[index],
            self.owned_centers(index),
            index,
            self._sequence,
            name=f"{self.graph.name}|F{index}",
        )
        previous_path = self._base_paths[index]
        if state_dir is not None:
            path = Path(state_dir) / f"fragment-{index}-seq{self._sequence}.ckpt"
            checkpoint.save(path)
            self._bases[index] = None
            self._base_paths[index] = str(path)
            if previous_path and previous_path != str(path):
                Path(previous_path).unlink(missing_ok=True)
        else:
            self._bases[index] = checkpoint
            self._base_paths[index] = None
        self._base_sequences[index] = self._sequence
        self._logs[index].clear()
        trace_event(
            "lifecycle.checkpoint",
            fragment=index,
            sequence=self._sequence,
            on_disk=state_dir is not None,
        )
        return checkpoint

    def lease(self, index: int) -> FragmentLease:
        """The round payload state for fragment *index* (base + slice tail)."""
        return FragmentLease(
            base_sequence=self._base_sequences[index],
            checkpoint=self._bases[index],
            checkpoint_path=self._base_paths[index],
            updates=tuple(self._logs[index]),
        )

    # ------------------------------------------------------------------
    # durable state (checkpoint → restart)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Self-contained picklable state (on-disk bases are inlined)."""
        bases: dict[int, FragmentCheckpoint | None] = {}
        for fragment in self.fragments:
            index = fragment.index
            base = self._bases[index]
            if base is None and self._base_paths[index] is not None:
                base = FragmentCheckpoint.load(self._base_paths[index])
            bases[index] = base
        return {
            "max_radius": self.max_radius,
            "x_label": self.x_label,
            "owner": dict(self._owner),
            "balls": {center: set(nodes) for center, nodes in self._balls.items()},
            "refcounts": {
                index: dict(counts) for index, counts in self._refcounts.items()
            },
            "node_sets": {index: set(nodes) for index, nodes in self._node_sets.items()},
            "logs": {index: list(log) for index, log in self._logs.items()},
            "bases": bases,
            "base_paths": dict(self._base_paths),
            "base_sequences": dict(self._base_sequences),
            "cost_factors": dict(self._cost_factors),
            "sequence": self._sequence,
        }

    @classmethod
    def from_state(cls, graph: Graph, state: dict, config) -> "FragmentManager":
        """Rebuild a manager (and its fragments) from :meth:`state_dict`.

        The fragments are re-materialised from the authoritative graph at
        the saved sequence, so a restarted worker pool starts from resident
        copies that are byte-identical to the pre-restart ones.
        """
        manager = cls.__new__(cls)
        manager.graph = graph
        manager.max_radius = state["max_radius"]
        manager.x_label = state["x_label"]
        manager.config = config
        manager._owner = dict(state["owner"])
        manager._balls = {center: set(nodes) for center, nodes in state["balls"].items()}
        manager._refcounts = {
            index: dict(counts) for index, counts in state["refcounts"].items()
        }
        manager._node_sets = {
            index: set(nodes) for index, nodes in state["node_sets"].items()
        }
        manager._logs = {index: list(log) for index, log in state["logs"].items()}
        manager._bases = dict(state["bases"])
        # On-disk base files that still exist keep serving leases (and get
        # reclaimed by the next compaction); the inlined copies in `bases`
        # cover restores onto a machine without the old state_dir.
        manager._base_paths = {
            index: path if path is not None and Path(path).exists() else None
            for index, path in state.get("base_paths", {}).items()
        }
        for index in manager._node_sets:
            manager._base_paths.setdefault(index, None)
            if manager._base_paths[index] is not None:
                manager._bases[index] = None
        manager._base_sequences = dict(state["base_sequences"])
        # Older checkpoints predate the measured-cost policy; absent factors
        # default to the neutral 1.0 (pure node-count balancing).
        manager._cost_factors = dict(state.get("cost_factors", {}))
        manager._sequence = state["sequence"]
        manager.fragments = []
        for index in sorted(manager._node_sets):
            node_set = manager._node_sets[index]
            local = (
                graph.induced_subgraph(node_set, name=f"{graph.name}|F{index}")
                if node_set
                else Graph(
                    name=f"{graph.name}|F{index}",
                    delta_log_size=graph.delta_log_size,
                )
            )
            manager.fragments.append(
                Fragment(
                    index=index,
                    graph=local,
                    owned_centers=manager.owned_centers(index),
                    sequence=manager._sequence,
                )
            )
        return manager
