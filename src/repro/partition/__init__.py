"""Graph fragmentation for the parallel algorithms (Sections 4.2 and 5.1).

Both DMine and Match divide the data graph into fragments such that

* every candidate centre node ``vx`` (a node that can match the designated
  node x of the predicate) has its whole d-neighbourhood ``Gd(vx)`` inside a
  single fragment, and
* fragments have roughly even size.

Candidate *ownership* is disjoint across fragments, so global supports are
the plain sums of fragment-local supports.
"""

from repro.partition.fragment import Fragment, FragmentationReport
from repro.partition.lifecycle import (
    FragmentCheckpoint,
    FragmentLease,
    FragmentManager,
    FragmentUpdate,
)
from repro.partition.partitioner import fragmentation_report, partition_graph

__all__ = [
    "Fragment",
    "FragmentationReport",
    "FragmentCheckpoint",
    "FragmentLease",
    "FragmentManager",
    "FragmentUpdate",
    "partition_graph",
    "fragmentation_report",
]
