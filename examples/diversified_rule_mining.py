"""Diversified GPAR mining on a Pokec-like social graph (the Exp-2 case study).

Mines top-k diversified rules for a predicate chosen from the most frequent
edge patterns of the graph (as the paper does for Pokec) and prints them in
the style of Fig. 5(g).  The planted regularities of the generator — book
communities where professional-development readers also pick up
personal-development books — should surface among the mined rules.
"""

from repro.datasets import most_frequent_predicates, pokec_like
from repro.mining import DMineConfig, dmine


def main() -> None:
    graph = pokec_like(num_users=220, num_communities=8, seed=7)
    print(f"Mining on {graph!r}")

    predicates = most_frequent_predicates(graph, top=10)
    target = next(
        (p for p in predicates if p.edges()[0].label == "like_book"), predicates[0]
    )
    edge = target.edges()[0]
    print(
        f"predicate q(x, y): {target.label(target.x)} --{edge.label}--> "
        f"{target.label(target.y)}"
    )

    config = DMineConfig(
        k=4,
        d=2,
        sigma=8,
        lam=0.5,
        num_workers=4,
        max_edges=3,
        max_extensions_per_rule=10,
    )
    result = dmine(graph, target, config)

    print(
        f"\nDMine finished: {result.rounds_executed} rounds, "
        f"{result.candidates_generated} candidate rules generated, "
        f"{result.num_rules_discovered} kept in Σ, "
        f"simulated parallel time {result.timings.simulated_parallel_time:.2f}s"
    )
    print(f"objective F(Lk) = {result.objective_value:.3f}\n")
    for mined in result.top_k:
        print(mined.as_row())
        print(mined.rule.describe())
        print(f"  example potential customers: {sorted(mined.matches)[:5]}")
        print()


if __name__ == "__main__":
    main()
