"""Restaurant recommendation on the paper's G1 (the Section 1 motivating case).

The example walks through the full Section 3 metric stack for rule R1
("if x and x' are friends in the same city, both like 3 French restaurants
there, and x' visits a new French restaurant y, then x will likely visit y"):
LCWA classification of customers, support, Bayes-factor confidence versus the
alternatives, and the diversified top-2 of Example 8.
"""

from repro.datasets import (
    graph_g1,
    rule_r1,
    rule_r5,
    rule_r6,
    rule_r7,
    rule_r8,
    visit_french_predicate,
)
from repro.metrics import (
    DiversificationObjective,
    evaluate_rule,
    predicate_stats,
    rule_difference,
)


def main() -> None:
    graph = graph_g1()
    predicate = visit_french_predicate()
    stats = predicate_stats(graph, predicate)

    print("LCWA classification for visit(cust, French restaurant):")
    print(f"  positives (visited a French restaurant): {sorted(stats.positives)}")
    print(f"  negatives (visit edges, none French):    {sorted(stats.negatives)}")
    print(f"  unknown   (no visit edge at all):        {sorted(stats.unknown)}")
    print(f"  supp(q) = {stats.supp_q}, supp(q̄) = {stats.supp_q_bar}")

    rules = [rule_r1(), rule_r5(), rule_r6(), rule_r7(), rule_r8()]
    evaluations = {rule.name: evaluate_rule(graph, rule, stats=stats) for rule in rules}

    print("\nRule evaluations (Bayes-factor conf vs PCA vs conventional):")
    for name, evaluation in evaluations.items():
        print(
            f"  {name}: supp={evaluation.supp_r} conf={evaluation.confidence:.2f} "
            f"PCA={evaluation.pca:.2f} conventional={evaluation.conventional:.2f} "
            f"customers={sorted(evaluation.rule_matches)}"
        )

    print("\nPairwise diversification distances (Jaccard over match sets):")
    for first, second in (("R1", "R7"), ("R1", "R8"), ("R7", "R8")):
        diff = rule_difference(
            evaluations[first].rule_matches, evaluations[second].rule_matches
        )
        print(f"  diff({first}, {second}) = {diff:.2f}")

    objective = DiversificationObjective(lam=0.5, k=2, normalizer=stats.normalizer)
    candidates = ["R1", "R7", "R8"]
    best_pair, best_value = None, float("-inf")
    for i, first in enumerate(candidates):
        for second in candidates[i + 1:]:
            value = objective.total_from_matches(
                [evaluations[first].confidence, evaluations[second].confidence],
                [evaluations[first].rule_matches, evaluations[second].rule_matches],
            )
            if value > best_value:
                best_pair, best_value = (first, second), value
    print(f"\nBest diversified top-2 set: {best_pair} with F = {best_value:.2f}")
    print("(Example 8 of the paper reports {R7, R8} with F = 1.08.)")


if __name__ == "__main__":
    main()
