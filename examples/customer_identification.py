"""Identify potential customers in a Google+-like graph with a rule set Σ (EIP).

Builds a workload of GPARs sampled from the graph (as the Exp-3 benchmarks
do), runs the three identification algorithms — Match, Matchc and disVF2 —
and shows that they agree on the identified entities while doing very
different amounts of work.
"""

from repro.datasets import generate_gpars, googleplus_like, most_frequent_predicates
from repro.identification import identify_entities, identify_sequential


def main() -> None:
    graph = googleplus_like(num_users=200, num_circles=8, seed=11)
    print(f"Identifying customers on {graph!r}")

    predicates = most_frequent_predicates(graph, top=6)
    target = next(
        (p for p in predicates if p.edges()[0].label == "major"), predicates[0]
    )
    edge = target.edges()[0]
    print(
        f"predicate q(x, y): {target.label(target.x)} --{edge.label}--> "
        f"{target.label(target.y)}"
    )

    rules = generate_gpars(graph, target, count=8, max_pattern_edges=4, d=2, seed=5)
    print(f"workload Σ: {len(rules)} rules, radii {[rule.radius for rule in rules]}")

    reference = identify_sequential(graph, rules, eta=1.0)
    print(f"\nsequential reference identified {len(reference.identified)} entities")

    for algorithm in ("match", "matchc", "disvf2"):
        result = identify_entities(
            graph, rules, eta=1.0, num_workers=4, algorithm=algorithm
        )
        agrees = result.identified == reference.identified
        print(
            f"{algorithm:>7}: {len(result.identified)} entities, "
            f"{result.candidates_examined} candidate checks, "
            f"simulated parallel time {result.timings.simulated_parallel_time:.3f}s, "
            f"agrees with reference: {agrees}"
        )

    best = identify_entities(graph, rules, eta=1.0, num_workers=4, algorithm="match")
    print("\n" + best.summary())


if __name__ == "__main__":
    main()
