"""Fake-account detection on the paper's G2 (Example 1(4) and rule R4).

Rule R4 flags an account x as a likely fake when a confirmed-fake account x'
shares k liked blogs with x and both have posted blogs containing the same
scam keyword.  This script evaluates R4 on G2 and then applies it through the
EIP interface to produce the suspect list.
"""

from repro.datasets import graph_g2, rule_r4
from repro.identification import identify_entities, identify_sequential
from repro.metrics import evaluate_rule


def main() -> None:
    graph = graph_g2()
    print(f"Loaded {graph!r}")

    for k in (1, 2):
        rule = rule_r4(k=k)
        evaluation = evaluate_rule(graph, rule)
        print(f"\nR4 with k = {k} shared liked blogs:")
        print(f"  suspects Q4(x, G2): {sorted(evaluation.antecedent_matches)}")
        print(f"  supp(R4, G2) = {evaluation.supp_r}")

    rule = rule_r4(k=2)
    print("\nApplying R4 through the EIP interface (η = 0.1):")
    sequential = identify_sequential(graph, [rule], eta=0.1)
    parallel = identify_entities(graph, [rule], eta=0.1, num_workers=2, algorithm="match")
    print("  sequential suspects:", sorted(sequential.identified))
    print("  parallel suspects:  ", sorted(parallel.identified))
    print(parallel.summary())


if __name__ == "__main__":
    main()
