"""Quickstart: build a graph, define a GPAR, evaluate it, mine, identify.

Run with ``python examples/quickstart.py``.  Everything here uses the public
API; the graph is the paper's running example G1 (Fig. 2).
"""

from repro.datasets import graph_g1, rule_r1, rule_r7, rule_r8, visit_french_predicate
from repro.identification import identify_entities
from repro.metrics import evaluate_rule, predicate_stats
from repro.mining import DMineConfig, dmine
from repro.pattern import GPAR, PatternBuilder


def build_my_own_rule() -> GPAR:
    """Define a GPAR by hand: friends of French-food fans visit the same place."""
    antecedent = (
        PatternBuilder()
        .node("x", "cust")
        .node("friend", "cust")
        .node("y", "French restaurant")
        .undirected_edge("x", "friend", "friend")
        .edge("friend", "y", "visit")
        .designate(x="x", y="y")
        .build()
    )
    return GPAR(antecedent, consequent_label="visit", name="my_rule")


def main() -> None:
    graph = graph_g1()
    print(f"Loaded {graph!r}")

    # 1. Evaluate a hand-written rule: support, LCWA confidence, match set.
    rule = build_my_own_rule()
    evaluation = evaluate_rule(graph, rule)
    print("\n-- evaluating a hand-written GPAR --")
    print(rule.describe())
    print(evaluation.as_row())
    print(f"potential customers: {sorted(evaluation.rule_matches)}")

    # 2. Evaluate the paper's rule R1 and reproduce its numbers.
    stats = predicate_stats(graph, rule_r1().q_pattern())
    r1_eval = evaluate_rule(graph, rule_r1(), stats=stats)
    print("\n-- the paper's R1 --")
    print(r1_eval.as_row())

    # 3. Mine top-k diversified GPARs for visit(cust, French restaurant).
    config = DMineConfig(k=2, d=2, sigma=1, lam=0.5, num_workers=2, max_edges=4)
    result = dmine(graph, visit_french_predicate(), config)
    print("\n-- DMine: top-2 diversified rules --")
    print(f"objective F(Lk) = {result.objective_value:.3f}")
    for mined in result.top_k:
        print(" ", mined.as_row())

    # 4. Identify potential customers with a set of rules (EIP).
    rules = [rule_r1(), rule_r7(), rule_r8()]
    eip = identify_entities(graph, rules, eta=0.5, num_workers=2, algorithm="match")
    print("\n-- EIP: who should we recommend a French restaurant to? --")
    print(eip.summary())
    print(f"identified customers: {sorted(eip.identified)}")


if __name__ == "__main__":
    main()
