"""Fig. 5(k): Match vs Matchc vs disVF2, varying ‖Σ‖ (Google+).

Same sweep as Fig. 5(j) on the Google+-like graph.
"""

import pytest

from repro.bench import eip_workload, run_eip_config

from conftest import record_series

RULE_COUNTS = [4, 8, 16]
WORKERS = 4
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5k", "Fig 5(k): Match varying ||Sigma|| (Google+-like)", _rows)


@pytest.mark.parametrize("algorithm", ["match", "matchc", "disvf2"])
@pytest.mark.parametrize("num_rules", RULE_COUNTS)
def test_match_vary_rules_google(benchmark, num_rules, algorithm):
    graph, rules = eip_workload("googleplus", num_rules=num_rules)
    row = benchmark.pedantic(
        lambda: run_eip_config(
            "googleplus", graph, rules, num_workers=WORKERS, algorithm=algorithm,
            parameter="rules", value=num_rules,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.identified >= 0
