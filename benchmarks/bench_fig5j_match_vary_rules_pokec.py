"""Fig. 5(j): Match vs Matchc vs disVF2, varying ‖Σ‖ (Pokec).

Paper setting: ‖Σ‖ from 8 to 48, n = 8, d = 2.  Here: rule-set sizes 4–16 on
the Pokec-like graph.  Expected shape: all algorithms grow with ‖Σ‖; Match is
the least sensitive because per-candidate work is shared across rules.
"""

import pytest

from repro.bench import eip_workload, run_eip_config

from conftest import record_series

RULE_COUNTS = [4, 8, 16]
WORKERS = 4
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5j", "Fig 5(j): Match varying ||Sigma|| (Pokec-like)", _rows)


@pytest.mark.parametrize("algorithm", ["match", "matchc", "disvf2"])
@pytest.mark.parametrize("num_rules", RULE_COUNTS)
def test_match_vary_rules_pokec(benchmark, num_rules, algorithm):
    graph, rules = eip_workload("pokec", num_rules=num_rules)
    row = benchmark.pedantic(
        lambda: run_eip_config(
            "pokec", graph, rules, num_workers=WORKERS, algorithm=algorithm,
            parameter="rules", value=num_rules,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.identified >= 0
