"""Fig. 5(d): DMine vs DMineno, varying σ (Google+).

Same sweep as Fig. 5(c) on the Google+-like graph.
"""

import pytest

from repro.bench import mining_workload, run_dmine_config

from conftest import record_series

SIGMAS = [6, 10, 14]
WORKERS = 4
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5d", "Fig 5(d): DMine varying sigma (Google+-like)", _rows)


@pytest.mark.parametrize("optimized", [True, False], ids=["DMine", "DMineno"])
@pytest.mark.parametrize("sigma", SIGMAS)
def test_dmine_vary_sigma_google(benchmark, sigma, optimized):
    graph, predicate = mining_workload("googleplus")
    row = benchmark.pedantic(
        lambda: run_dmine_config(
            "googleplus", graph, predicate,
            num_workers=WORKERS, sigma=sigma, optimized=optimized,
            parameter="sigma", value=sigma,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.rules_discovered >= 0
