"""Exp-2 table: prediction precision of conf vs PCAconf vs Iconf.

Paper setting: Pokec split into training fragment F1 and validation fragment
F2; rules mined from F1 with λ = 0 are ranked by each confidence metric, and
the precision ``prec(R) = supp(R, F2) / supp(Q, F2)`` of the top-k rules is
averaged.  Expected shape: the Bayes-factor conf ranks rules that transfer
better than PCA and image-based confidence (conf column highest).
"""

import pytest

from repro.bench import mining_workload
from repro.metrics import evaluate_rule, predicate_stats
from repro.metrics.confidence import evaluate_rule_image_based
from repro.mining import DMineConfig, dmine
from repro.partition import partition_graph

from conftest import record_series

TOP_SIZES = [3, 5]
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("exp2", "Exp-2: prediction precision by confidence metric", _rows)


def _split_graph(graph, predicate):
    """Split the graph into a training and a validation half (F1 / F2)."""
    centers = graph.nodes_with_label(predicate.label(predicate.x))
    fragments = partition_graph(graph, 2, centers=centers, d=2, seed=13)
    return fragments[0].graph, fragments[1].graph


def _average_precision(rules, ranking_key, validation_graph, top):
    ranked = sorted(rules, key=ranking_key, reverse=True)[:top]
    precisions = []
    for rule in ranked:
        evaluation = evaluate_rule(validation_graph, rule)
        if evaluation.supp_antecedent:
            precisions.append(evaluation.supp_r / evaluation.supp_antecedent)
        else:
            precisions.append(0.0)
    return sum(precisions) / len(precisions) if precisions else 0.0


def test_precision_table(benchmark):
    graph, predicate = mining_workload("pokec")
    training, validation = _split_graph(graph, predicate)

    config = DMineConfig(
        k=8, d=2, sigma=4, lam=0.0, num_workers=2,
        max_edges=2, max_extensions_per_rule=8, max_rules_per_round=30,
    )

    def run() -> dict:
        result = dmine(training, predicate, config)
        rules = list(result.all_rules)
        stats = predicate_stats(training, predicate)
        scored = []
        for rule in rules:
            evaluation = evaluate_rule(training, rule, stats=stats)
            iconf = evaluate_rule_image_based(
                training, rule, stats=stats, max_matches=2000
            )
            scored.append((rule, evaluation.confidence, evaluation.pca, iconf))
        return {"scored": scored}

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    scored = outcome["scored"]
    assert scored, "mining the training fragment produced no rules"

    finite = [entry for entry in scored if entry[1] != float("inf")]
    usable = finite if finite else scored
    for top in TOP_SIZES:
        row = {"top": top}
        for name, index in (("conf", 1), ("PCAconf", 2), ("Iconf", 3)):
            row[name] = round(
                _average_precision(
                    [entry[0] for entry in usable],
                    ranking_key=lambda rule, idx=index: next(
                        entry[idx] for entry in usable if entry[0] == rule
                    ),
                    validation_graph=validation,
                    top=top,
                ),
                3,
            )
        _rows.append(row)
    # Precision values are probabilities.
    for row in _rows:
        assert all(0.0 <= row[name] <= 1.0 for name in ("conf", "PCAconf", "Iconf"))
