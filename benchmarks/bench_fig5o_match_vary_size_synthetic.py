"""Fig. 5(o): Match vs Matchc vs disVF2, varying the synthetic graph size.

Paper setting: |G| from (10M, 20M) to (50M, 100M), n = 4, ‖Σ‖ = 24.  Here:
node counts 600–2400 (edges = 3 × nodes), 8 rules, n = 4.  Expected shape:
all algorithms grow with |G|; Match the least sensitive, disVF2 the most.
"""

import pytest

from repro.bench import run_eip_config, synthetic_eip_workload

from conftest import record_series

SIZES = [(600, 1800), (1200, 3600), (2400, 7200)]
WORKERS = 4
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5o", "Fig 5(o): Match varying |G| (synthetic)", _rows)


@pytest.mark.parametrize("algorithm", ["match", "matchc", "disvf2"])
@pytest.mark.parametrize("size", SIZES, ids=[f"{v}v" for v, _ in SIZES])
def test_match_vary_size_synthetic(benchmark, size, algorithm):
    num_nodes, num_edges = size
    graph, rules = synthetic_eip_workload(num_nodes, num_edges, num_rules=8)
    row = benchmark.pedantic(
        lambda: run_eip_config(
            "synthetic", graph, rules, num_workers=WORKERS, algorithm=algorithm,
            parameter="|G|", value=f"({num_nodes},{num_edges})",
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.identified >= 0
