"""Fig. 5(g): case study — the GPARs DMine discovers from the social graphs.

The paper presents three mined rules (R9–R11) relating friends' hobbies,
book interests and school/employer attributes.  Here DMine is run on the
Pokec-like and Google+-like graphs and the top diversified rules are
reported with their supports and confidences; the planted regularities of
the generators (shared book interests, shared majors) should appear.
"""

import pytest

from repro.bench import mining_workload
from repro.mining import DMineConfig, dmine

from conftest import record_series

_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5g", "Fig 5(g): case study — mined GPARs", _rows)


@pytest.mark.parametrize("dataset", ["pokec", "googleplus"])
def test_case_study_rules(benchmark, dataset):
    graph, predicate = mining_workload(dataset)
    config = DMineConfig(
        k=3, d=2, sigma=8, lam=0.5, num_workers=4,
        max_edges=2, max_extensions_per_rule=8, max_rules_per_round=30,
    )
    result = benchmark.pedantic(
        lambda: dmine(graph, predicate, config), rounds=1, iterations=1
    )
    assert result.top_k
    for mined in result.top_k:
        edge = mined.rule.antecedent.edges()[0] if mined.rule.antecedent.edges() else None
        _rows.append(
            {
                "dataset": dataset,
                "rule": mined.rule.name,
                "consequent": mined.rule.consequent_label,
                "antecedent edges": ", ".join(
                    f"{mined.rule.antecedent.label(e.source)}-{e.label}->"
                    f"{mined.rule.antecedent.label(e.target)}"
                    for e in mined.rule.antecedent.edges()
                ),
                "supp": mined.support,
                "conf": round(mined.confidence, 3),
            }
        )
    # The planted regularity yields positively-correlated rules (conf > 1).
    assert max(mined.confidence for mined in result.top_k) > 1.0
