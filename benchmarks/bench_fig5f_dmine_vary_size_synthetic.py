"""Fig. 5(f): DMine vs DMineno, varying the synthetic graph size |G|.

Paper setting: |G| from (10M, 20M) to (50M, 100M), n = 16.  Here: node
counts swept from 600 to 2400 (edges = 3 × nodes), n = 4.  Expected shape:
both algorithms take longer on larger graphs, DMine below DMineno.
"""

import pytest

from repro.bench import run_dmine_config, synthetic_mining_workload

from conftest import record_series

SIZES = [(600, 1800), (1200, 3600), (2400, 7200)]
WORKERS = 4
SIGMA = 4
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5f", "Fig 5(f): DMine varying |G| (synthetic)", _rows)


@pytest.mark.parametrize("optimized", [True, False], ids=["DMine", "DMineno"])
@pytest.mark.parametrize("size", SIZES, ids=[f"{v}v" for v, _ in SIZES])
def test_dmine_vary_size_synthetic(benchmark, size, optimized):
    num_nodes, num_edges = size
    graph, predicate = synthetic_mining_workload(num_nodes, num_edges)
    row = benchmark.pedantic(
        lambda: run_dmine_config(
            "synthetic", graph, predicate,
            num_workers=WORKERS, sigma=SIGMA, optimized=optimized,
            parameter="|G|", value=f"({num_nodes},{num_edges})",
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.rules_discovered >= 0
