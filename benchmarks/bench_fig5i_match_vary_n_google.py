"""Fig. 5(i): Match vs Matchc vs disVF2, varying n (Google+).

Same sweep as Fig. 5(h) on the Google+-like graph.
"""

import pytest

from repro.bench import eip_workload, run_eip_config

from conftest import record_series

WORKERS = [2, 4, 8]
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5i", "Fig 5(i): Match varying n (Google+-like)", _rows)


@pytest.mark.parametrize("algorithm", ["match", "matchc", "disvf2"])
@pytest.mark.parametrize("n", WORKERS)
def test_match_vary_n_google(benchmark, n, algorithm):
    graph, rules = eip_workload("googleplus", num_rules=8)
    row = benchmark.pedantic(
        lambda: run_eip_config(
            "googleplus", graph, rules, num_workers=n, algorithm=algorithm,
            parameter="n", value=n,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.identified >= 0
