"""Fig. 5(n): Match vs Matchc vs disVF2, varying n on the synthetic graph.

Paper setting: |G| = (50M, 100M), ‖Σ‖ = 24, η = 1.5, n = 4..20.  Here: the
benchmark-scale synthetic graph with 8 rules and n = 2..8 workers.
"""

import pytest

from repro.bench import run_eip_config, synthetic_eip_workload

from conftest import record_series

WORKERS = [2, 4, 8]
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5n", "Fig 5(n): Match varying n (synthetic)", _rows)


@pytest.mark.parametrize("algorithm", ["match", "matchc", "disvf2"])
@pytest.mark.parametrize("n", WORKERS)
def test_match_vary_n_synthetic(benchmark, n, algorithm):
    graph, rules = synthetic_eip_workload(1200, 3600, num_rules=8)
    row = benchmark.pedantic(
        lambda: run_eip_config(
            "synthetic", graph, rules, num_workers=n, algorithm=algorithm,
            parameter="n", value=n,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.identified >= 0
