"""Shared helpers for the benchmark suite.

Every benchmark module accumulates the rows of its figure/table and hands
them to :func:`record_series` at module teardown; the series is printed and
written to ``benchmarks/results/<name>.txt`` (the regenerated "figure",
surviving pytest's output capturing) and to
``benchmarks/results/BENCH_<name>.json`` — the machine-readable form the CI
smoke job and future PRs use to track the perf trajectory.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench import format_rows, rows_as_json

RESULTS_DIR = Path(__file__).parent / "results"


def record_series(name: str, title: str, rows) -> None:
    """Print a measured series and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"== {title} ==\n{format_rows(rows)}\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(rows_as_json(name, title, rows) + "\n")
    print("\n" + text)
