"""Shared helpers for the benchmark suite.

Every benchmark module accumulates the rows of its figure/table and hands
them to :func:`record_series` at module teardown; the series is printed and
also written to ``benchmarks/results/<name>.txt`` so the regenerated
"figure" survives pytest's output capturing.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench import format_rows

RESULTS_DIR = Path(__file__).parent / "results"


def record_series(name: str, title: str, rows) -> None:
    """Print a measured series and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"== {title} ==\n{format_rows(rows)}\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
