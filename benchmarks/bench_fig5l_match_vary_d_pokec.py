"""Fig. 5(l): Match vs Matchc vs disVF2, varying the rule radius d (Pokec).

Paper setting: d from 1 to 5, n = 8, ‖Σ‖ = 20.  Here: rule workloads sampled
with maximum radius 1–3 on the Pokec-like graph.  Expected shape: all
algorithms slow down as d grows (larger neighbourhoods to explore); Match
and Matchc are less sensitive than disVF2.
"""

import pytest

from repro.bench import eip_workload, run_eip_config

from conftest import record_series

RADII = [1, 2, 3]
WORKERS = 4
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5l", "Fig 5(l): Match varying d (Pokec-like)", _rows)


@pytest.mark.parametrize("algorithm", ["match", "matchc", "disvf2"])
@pytest.mark.parametrize("d", RADII)
def test_match_vary_d_pokec(benchmark, d, algorithm):
    graph, rules = eip_workload("pokec", num_rules=6, max_pattern_edges=4, d=d)
    row = benchmark.pedantic(
        lambda: run_eip_config(
            "pokec", graph, rules, num_workers=WORKERS, algorithm=algorithm,
            parameter="d", value=d,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.identified >= 0
