"""Fig. 5(h): Match vs Matchc vs disVF2, varying n (Pokec).

Paper setting: ‖Σ‖ = 24, |R| = (5, 8), d = 2, n = 4..20 on Pokec.  Here:
8 sampled rules on the Pokec-like graph, n = 2..8 simulated workers.
Expected shape: all three scale with n; Match fastest, disVF2 slowest.
"""

import pytest

from repro.bench import eip_workload, run_eip_config

from conftest import record_series

WORKERS = [2, 4, 8]
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5h", "Fig 5(h): Match varying n (Pokec-like)", _rows)


@pytest.mark.parametrize("algorithm", ["match", "matchc", "disvf2"])
@pytest.mark.parametrize("n", WORKERS)
def test_match_vary_n_pokec(benchmark, n, algorithm):
    graph, rules = eip_workload("pokec", num_rules=8)
    row = benchmark.pedantic(
        lambda: run_eip_config(
            "pokec", graph, rules, num_workers=n, algorithm=algorithm,
            parameter="n", value=n,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.identified >= 0
