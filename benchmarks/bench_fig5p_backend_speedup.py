"""Fig. 5(p) — reproduction extra: real wall-clock speedup per backend.

The paper's scalability figures report *simulated* parallel time (max worker
time + coordinator time per round), which is deterministic but never shows a
real multi-core win.  This series runs the same DMine and Match
configurations on the sequential, thread and process backends and reports
the measured wall-clock speedup of each over sequential — the number that
should track the processor count on real hardware (Exp-1/Exp-3 headline
claim).  On a single-core machine the process backend legitimately reports
≈1x or below; the series is about the measurement machinery, so rows only
assert result equivalence, not a speedup floor.
"""

import pytest

from repro.bench import (
    eip_workload,
    mining_workload,
    run_dmine_backends,
    run_eip_backends,
)

from conftest import record_series

BACKENDS = ["threads", "processes"]
WORKERS = 4
SIGMA = 4
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series(
        "fig5p", "Fig 5(p): real wall-clock speedup per execution backend", _rows
    )


def test_dmine_backend_speedup(benchmark):
    graph, predicate = mining_workload("synthetic")
    rows = benchmark.pedantic(
        lambda: run_dmine_backends(
            "synthetic", graph, predicate,
            num_workers=WORKERS, sigma=SIGMA, backends=BACKENDS,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.extend(rows)
    # All backends must mine the same rule set (the correctness gate): the
    # fingerprint hashes rule structure + support + confidence.
    assert len({row.fingerprint for row in rows}) == 1


def test_match_backend_speedup(benchmark):
    graph, rules = eip_workload("synthetic", num_rules=6)
    rows = benchmark.pedantic(
        lambda: run_eip_backends(
            "synthetic", graph, rules,
            num_workers=WORKERS, algorithm="match", eta=0.5, backends=BACKENDS,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.extend(rows)
    assert len({row.fingerprint for row in rows}) == 1
