"""Fig. 5(e): DMine vs DMineno, varying n on the synthetic graph.

Paper setting: |G| = (10M, 20M), σ = 100, n = 4..20.  Here: a synthetic
graph of ~1.2k nodes / 3.6k edges with n = 2..8 simulated workers.
"""

import pytest

from repro.bench import mining_workload, run_dmine_config

from conftest import record_series

WORKERS = [2, 4, 8]
SIGMA = 4
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5e", "Fig 5(e): DMine varying n (synthetic)", _rows)


@pytest.mark.parametrize("optimized", [True, False], ids=["DMine", "DMineno"])
@pytest.mark.parametrize("n", WORKERS)
def test_dmine_vary_n_synthetic(benchmark, n, optimized):
    graph, predicate = mining_workload("synthetic")
    row = benchmark.pedantic(
        lambda: run_dmine_config(
            "synthetic", graph, predicate,
            num_workers=n, sigma=SIGMA, optimized=optimized, parameter="n", value=n,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.rules_discovered >= 0
