"""Fig. 5(m): Match vs Matchc vs disVF2, varying d (Google+).

Same sweep as Fig. 5(l) on the Google+-like graph.
"""

import pytest

from repro.bench import eip_workload, run_eip_config

from conftest import record_series

RADII = [1, 2, 3]
WORKERS = 4
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5m", "Fig 5(m): Match varying d (Google+-like)", _rows)


@pytest.mark.parametrize("algorithm", ["match", "matchc", "disvf2"])
@pytest.mark.parametrize("d", RADII)
def test_match_vary_d_google(benchmark, d, algorithm):
    graph, rules = eip_workload("googleplus", num_rules=6, max_pattern_edges=4, d=d)
    row = benchmark.pedantic(
        lambda: run_eip_config(
            "googleplus", graph, rules, num_workers=WORKERS, algorithm=algorithm,
            parameter="d", value=d,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.identified >= 0
