"""Partition skew (Section 6, "Fragmentation and distribution").

The paper reports that the gap between the maximum and minimum per-fragment
processing time is at most 14.4% (Pokec) / 8.8% (Google+) for DMine and at
most 6.0% / 5.2% for Match.  This benchmark measures (a) the structural
fragment-size skew produced by the partitioner and (b) the per-round
worker-time skew of an actual Match run.
"""

import pytest

from repro.bench import eip_workload
from repro.identification import identify_entities
from repro.partition import fragmentation_report, partition_graph

from conftest import record_series

_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("partition_skew", "Partition skew (structure and runtime)", _rows)


@pytest.mark.parametrize("dataset", ["pokec", "googleplus"])
def test_partition_skew(benchmark, dataset):
    graph, rules = eip_workload(dataset, num_rules=8)
    centers = graph.nodes_with_label(rules[0].x_label)

    def run():
        fragments = partition_graph(graph, 4, centers=centers, d=2, seed=0)
        report = fragmentation_report(graph, fragments)
        result = identify_entities(graph, list(rules), eta=1.0, num_workers=4, algorithm="match")
        return report, result

    report, result = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows.append(
        {
            "dataset": dataset,
            "fragments": report.num_fragments,
            "size_skew": round(report.skew, 3),
            "replicated_nodes": report.replicated_nodes,
            "worker_time_skew": round(result.timings.max_worker_skew(), 3),
        }
    )
    # Greedy balancing should keep structural skew well under 50%.
    assert report.skew <= 0.5
