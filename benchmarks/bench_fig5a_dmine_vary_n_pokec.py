"""Fig. 5(a): DMine vs DMineno, varying the number of processors n (Pokec).

Paper setting: Pokec, d = 2, σ = 5000, n = 4..20.  Here: the Pokec-like
graph, d = 2, a proportionally scaled σ, n = 2..8 simulated workers.  The
expected shape: time decreases as n grows, and DMine stays below DMineno.
"""

import pytest

from repro.bench import mining_workload, run_dmine_config

from conftest import record_series

WORKERS = [2, 4, 8]
SIGMA = 8
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5a", "Fig 5(a): DMine varying n (Pokec-like)", _rows)


@pytest.mark.parametrize("optimized", [True, False], ids=["DMine", "DMineno"])
@pytest.mark.parametrize("n", WORKERS)
def test_dmine_vary_n_pokec(benchmark, n, optimized):
    graph, predicate = mining_workload("pokec")
    row = benchmark.pedantic(
        lambda: run_dmine_config(
            "pokec", graph, predicate,
            num_workers=n, sigma=SIGMA, optimized=optimized, parameter="n", value=n,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.rules_discovered >= 0
