"""Fig. 5(c): DMine vs DMineno, varying the support threshold σ (Pokec).

Paper setting: σ from 3k to 7k on Pokec.  Here: σ swept over a proportional
range on the Pokec-like graph.  Expected shape: smaller σ ⇒ more candidate
rules survive ⇒ longer runtimes; DMine stays below DMineno and is less
sensitive to σ.
"""

import pytest

from repro.bench import mining_workload, run_dmine_config

from conftest import record_series

SIGMAS = [6, 10, 14]
WORKERS = 4
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5c", "Fig 5(c): DMine varying sigma (Pokec-like)", _rows)


@pytest.mark.parametrize("optimized", [True, False], ids=["DMine", "DMineno"])
@pytest.mark.parametrize("sigma", SIGMAS)
def test_dmine_vary_sigma_pokec(benchmark, sigma, optimized):
    graph, predicate = mining_workload("pokec")
    row = benchmark.pedantic(
        lambda: run_dmine_config(
            "pokec", graph, predicate,
            num_workers=WORKERS, sigma=sigma, optimized=optimized,
            parameter="sigma", value=sigma,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.rules_discovered >= 0
