"""Fig. 5(b): DMine vs DMineno, varying n (Google+).

Paper setting: Google+, d = 2, σ = 500, n = 4..20.  Here: the Google+-like
graph with n = 2..8 simulated workers.  Expected shape as in Fig. 5(a).
"""

import pytest

from repro.bench import mining_workload, run_dmine_config

from conftest import record_series

WORKERS = [2, 4, 8]
SIGMA = 8
_rows = []


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    record_series("fig5b", "Fig 5(b): DMine varying n (Google+-like)", _rows)


@pytest.mark.parametrize("optimized", [True, False], ids=["DMine", "DMineno"])
@pytest.mark.parametrize("n", WORKERS)
def test_dmine_vary_n_google(benchmark, n, optimized):
    graph, predicate = mining_workload("googleplus")
    row = benchmark.pedantic(
        lambda: run_dmine_config(
            "googleplus", graph, predicate,
            num_workers=n, sigma=SIGMA, optimized=optimized, parameter="n", value=n,
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    assert row.rules_discovered >= 0
