"""Replay every distilled counterexample in ``tests/regressions/`` forever.

Each ``*.json`` file is a self-contained :class:`repro.testing.RegressionCase`
— a minimal graph, rule set and batch sequence that once exposed a real
divergence between maintained streaming state and a fresh recompute (the
recorded ``divergence`` field documents what it used to fail with).  The
differential oracle re-runs each case from scratch on every test run; a
reappearing divergence means the pinned bug regressed.

New cases are added by the storm harness (``repro.testing``) after
distillation and MinHash dedup — see ``docs/adversarial.md``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.testing.cases import iter_case_paths, load_case

CASES_DIR = Path(__file__).resolve().parent / "regressions"
CASE_PATHS = list(iter_case_paths(CASES_DIR))


def test_corpus_is_present():
    """The committed corpus must never silently vanish (e.g. a bad glob)."""
    assert len(CASE_PATHS) >= 2


@pytest.mark.parametrize("path", CASE_PATHS, ids=lambda path: path.stem)
def test_regression_case_replays_clean(path):
    case = load_case(path)
    verdict = case.replay()
    assert verdict is None, (
        f"regression case {case.name!r} diverged again "
        f"(originally: {case.divergence.get('detail', 'unknown')}): "
        f"{verdict.describe()}"
    )
