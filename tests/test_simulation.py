"""Tests for the graph-simulation matching semantics (future-work extension)."""

import pytest

from repro.graph import Graph
from repro.matching import (
    SimulationMatcher,
    VF2Matcher,
    maximum_dual_simulation,
    simulation_match_set,
)
from repro.pattern import Pattern, PatternBuilder


@pytest.fixture
def cycle_graph() -> Graph:
    """A 2-cycle of customers plus a dangling chain of the same labels."""
    graph = Graph(name="cycles")
    for node in ("a", "b", "c", "d"):
        graph.add_node(node, "cust")
    graph.add_edge("a", "b", "friend")
    graph.add_edge("b", "a", "friend")
    graph.add_edge("c", "d", "friend")
    return graph


@pytest.fixture
def friend_cycle_pattern() -> Pattern:
    return (
        PatternBuilder()
        .node("x", "cust")
        .node("y", "cust")
        .edge("x", "y", "friend")
        .edge("y", "x", "friend")
        .designate(x="x", y="y")
        .build()
    )


class TestMaximumSimulation:
    def test_simulation_on_paper_graph(self, g1, r7):
        """Every isomorphism match is also a simulation match."""
        iso = VF2Matcher().match_set(g1, r7.pr_pattern())
        sim = simulation_match_set(g1, r7.pr_pattern())
        assert iso <= sim

    def test_simulation_respects_labels(self, g1):
        pattern = Pattern(nodes={"x": "spaceship"}, edges=[], x="x")
        assert simulation_match_set(g1, pattern) == set()

    def test_simulation_weaker_than_isomorphism_on_cycles(
        self, cycle_graph, friend_cycle_pattern
    ):
        """Simulation cannot distinguish the 2-cycle from the chain's source...

        ...but isomorphism can: only a and b lie on an actual mutual-friend
        cycle, while simulation also keeps them (it never adds non-cycle
        nodes here because the backward condition on the chain fails).
        """
        iso = VF2Matcher().match_set(cycle_graph, friend_cycle_pattern)
        sim = simulation_match_set(cycle_graph, friend_cycle_pattern)
        assert iso == {"a", "b"}
        assert iso <= sim

    def test_total_simulation_required(self, cycle_graph):
        """If one pattern node cannot be simulated, the whole result is empty."""
        pattern = (
            PatternBuilder()
            .node("x", "cust")
            .node("r", "restaurant")
            .edge("x", "r", "visit")
            .designate(x="x", y="r")
            .build()
        )
        simulation = maximum_dual_simulation(pattern, cycle_graph)
        assert all(not candidates for candidates in simulation.values())

    def test_dual_condition_prunes_dangling_nodes(self, cycle_graph, friend_cycle_pattern):
        simulation = maximum_dual_simulation(friend_cycle_pattern, cycle_graph)
        # d has no outgoing friend edge, so it cannot simulate either node;
        # c has no incoming friend edge, so it is pruned by the backward check.
        assert "d" not in simulation["x"] and "c" not in simulation["x"]

    def test_copy_counts_are_expanded(self, g1, r1):
        simulation = maximum_dual_simulation(r1.pr_pattern(), g1)
        assert simulation[r1.x] >= {"cust1", "cust2", "cust3"}


class TestSimulationMatcher:
    def test_match_set_with_candidate_restriction(self, g1, r7):
        matcher = SimulationMatcher()
        full = matcher.match_set(g1, r7.pr_pattern())
        restricted = matcher.match_set(g1, r7.pr_pattern(), candidates={"cust1"})
        assert restricted == full & {"cust1"}

    def test_exists_match_at(self, g1, r7):
        matcher = SimulationMatcher()
        assert matcher.exists_match_at(g1, r7.pr_pattern(), "cust1")
        assert not matcher.exists_match_at(g1, r7.pr_pattern(), "LeBernardin")

    def test_cache_reuse_and_clear(self, g1, r7):
        matcher = SimulationMatcher()
        first = matcher.match_set(g1, r7.pr_pattern())
        second = matcher.match_set(g1, r7.pr_pattern())
        assert first == second
        matcher.clear_caches()
        assert matcher.match_set(g1, r7.pr_pattern()) == first
