"""Tests for the subgraph-isomorphism matchers.

The VF2-style matcher is checked against a brute-force oracle on small
graphs; the guided matcher and the locality/multi-pattern wrappers are
checked for agreement with the VF2 matcher on the paper's graphs.
"""

from itertools import permutations

import pytest

from repro.datasets import graph_g1
from repro.graph import Graph
from repro.matching import (
    GuidedMatcher,
    LocalityMatcher,
    MultiPatternMatcher,
    VF2Matcher,
    adjacency_profile,
    label_candidates,
    profile_satisfies,
    required_profile,
)
from repro.matching.base import build_search_plan
from repro.matching.candidates import degree_consistent
from repro.exceptions import MatchingError
from repro.pattern import Pattern, PatternBuilder


def brute_force_match_set(graph: Graph, pattern: Pattern) -> set:
    """Oracle: try every injective assignment of pattern nodes to data nodes."""
    expanded = pattern.expanded()
    pattern_nodes = list(expanded.nodes())
    data_nodes = list(graph.nodes())
    matches = set()
    if len(pattern_nodes) > len(data_nodes):
        return matches
    for assignment in permutations(data_nodes, len(pattern_nodes)):
        mapping = dict(zip(pattern_nodes, assignment))
        if any(graph.node_label(mapping[u]) != expanded.label(u) for u in pattern_nodes):
            continue
        if all(
            graph.has_edge(mapping[e.source], mapping[e.target], e.label)
            for e in expanded.edges()
        ):
            matches.add(mapping[expanded.x])
    return matches


@pytest.fixture
def tiny_graph() -> Graph:
    graph = Graph(name="tiny")
    for node, label in (
        ("a", "cust"),
        ("b", "cust"),
        ("c", "cust"),
        ("r1", "restaurant"),
        ("r2", "restaurant"),
    ):
        graph.add_node(node, label)
    graph.add_edge("a", "b", "friend")
    graph.add_edge("b", "a", "friend")
    graph.add_edge("b", "c", "friend")
    graph.add_edge("a", "r1", "visit")
    graph.add_edge("b", "r1", "visit")
    graph.add_edge("b", "r2", "like")
    graph.add_edge("c", "r2", "visit")
    return graph


@pytest.fixture
def friend_visit_pattern() -> Pattern:
    return (
        PatternBuilder()
        .node("x", "cust")
        .node("f", "cust")
        .node("y", "restaurant")
        .edge("x", "f", "friend")
        .edge("f", "y", "visit")
        .designate(x="x", y="y")
        .build()
    )


class TestSearchPlan:
    def test_plan_starts_at_anchor(self, friend_visit_pattern):
        plan = build_search_plan(friend_visit_pattern, "x")
        assert plan.order[0] == "x"
        assert len(plan.order) == 3
        # Every later node connects to already-placed ones.
        assert all(plan.connections[i] for i in range(1, 3))

    def test_plan_unknown_anchor(self, friend_visit_pattern):
        with pytest.raises(MatchingError):
            build_search_plan(friend_visit_pattern, "ghost")

    def test_plan_handles_disconnected_pattern(self):
        pattern = Pattern(
            nodes={"x": "cust", "y": "restaurant"}, edges=[], x="x", y="y"
        )
        plan = build_search_plan(pattern, "x")
        assert len(plan.order) == 2
        assert plan.connections[1] == []


class TestCandidates:
    def test_label_candidates(self, tiny_graph, friend_visit_pattern):
        assert label_candidates(tiny_graph, friend_visit_pattern, "y") == {"r1", "r2"}

    def test_required_profile(self, friend_visit_pattern):
        profile = required_profile(friend_visit_pattern, "f")
        assert profile[("out", "visit", "restaurant")] == 1
        assert profile[("in", "friend", "cust")] == 1

    def test_adjacency_profile_and_satisfaction(self, tiny_graph, friend_visit_pattern):
        needed = required_profile(friend_visit_pattern, "f")
        assert profile_satisfies(adjacency_profile(tiny_graph, "b"), needed)
        # A restaurant node has neither the friend in-edge nor a visit out-edge.
        assert not profile_satisfies(adjacency_profile(tiny_graph, "r1"), needed)

    def test_degree_consistent(self, tiny_graph, friend_visit_pattern):
        assert degree_consistent(tiny_graph, "a", friend_visit_pattern, "x")
        assert not degree_consistent(tiny_graph, "r1", friend_visit_pattern, "x")


@pytest.mark.parametrize("matcher_factory", [VF2Matcher, GuidedMatcher])
class TestAnchoredMatching:
    def test_match_set_against_oracle(self, matcher_factory, tiny_graph, friend_visit_pattern):
        matcher = matcher_factory()
        expected = brute_force_match_set(tiny_graph, friend_visit_pattern)
        assert matcher.match_set(tiny_graph, friend_visit_pattern) == expected

    def test_find_match_at_returns_valid_mapping(
        self, matcher_factory, tiny_graph, friend_visit_pattern
    ):
        matcher = matcher_factory()
        mapping = matcher.find_match_at(tiny_graph, friend_visit_pattern, "a")
        assert mapping is not None
        assert mapping["x"] == "a"
        assert tiny_graph.has_edge(mapping["x"], mapping["f"], "friend")
        assert tiny_graph.has_edge(mapping["f"], mapping["y"], "visit")
        assert len(set(mapping.values())) == len(mapping)

    def test_no_match_for_wrong_label(self, matcher_factory, tiny_graph, friend_visit_pattern):
        matcher = matcher_factory()
        assert matcher.find_match_at(tiny_graph, friend_visit_pattern, "r1") is None

    def test_no_match_for_unknown_node(self, matcher_factory, tiny_graph, friend_visit_pattern):
        matcher = matcher_factory()
        assert not matcher.exists_match_at(tiny_graph, friend_visit_pattern, "ghost")

    def test_injectivity_enforced(self, matcher_factory):
        """Two pattern nodes with the same label need two distinct data nodes."""
        graph = Graph()
        graph.add_node("x", "cust")
        graph.add_node("r", "restaurant")
        graph.add_edge("x", "r", "like")
        pattern = (
            PatternBuilder()
            .node("x", "cust")
            .node("r", "restaurant", copies=2)
            .edge("x", "r", "like")
            .designate(x="x")
            .build()
        )
        matcher = matcher_factory()
        assert matcher.match_set(graph, pattern) == set()

    def test_copies_matched_on_paper_graph(self, matcher_factory, r1):
        matcher = matcher_factory()
        matches = matcher.match_set(graph_g1(), r1.pr_pattern())
        assert matches == {"cust1", "cust2", "cust3"}

    def test_edge_label_must_match(self, matcher_factory, tiny_graph):
        pattern = (
            PatternBuilder()
            .node("x", "cust")
            .node("y", "restaurant")
            .edge("x", "y", "hates")
            .designate(x="x", y="y")
            .build()
        )
        assert matcher_factory().match_set(tiny_graph, pattern) == set()

    def test_disconnected_pattern_free_node(self, matcher_factory, tiny_graph):
        pattern = Pattern(
            nodes={"x": "cust", "other": "restaurant"}, edges=[], x="x", y="other"
        )
        matcher = matcher_factory()
        # Every cust matches: some restaurant exists somewhere.
        assert matcher.match_set(tiny_graph, pattern) == {"a", "b", "c"}

    def test_statistics_counters_move(self, matcher_factory, tiny_graph, friend_visit_pattern):
        matcher = matcher_factory()
        matcher.match_set(tiny_graph, friend_visit_pattern)
        assert matcher.statistics.candidates_considered > 0
        matcher.reset_statistics()
        assert matcher.statistics.candidates_considered == 0


class TestFullEnumeration:
    def test_find_all_counts_distinct_mappings(self, tiny_graph, friend_visit_pattern):
        matcher = VF2Matcher()
        mappings = matcher.find_all(tiny_graph, friend_visit_pattern)
        keys = {tuple(sorted(m.items(), key=lambda kv: str(kv[0]))) for m in mappings}
        assert len(keys) == len(mappings)
        assert {m["x"] for m in mappings} == brute_force_match_set(
            tiny_graph, friend_visit_pattern
        )

    def test_find_all_limit(self, tiny_graph, friend_visit_pattern):
        matcher = VF2Matcher()
        assert len(matcher.find_all(tiny_graph, friend_visit_pattern, limit=1)) == 1

    def test_guided_iter_matches_agree_with_vf2(self, tiny_graph, friend_visit_pattern):
        vf2_anchors = {
            m["x"] for m in VF2Matcher().find_all(tiny_graph, friend_visit_pattern)
        }
        guided_anchors = {
            m["x"] for m in GuidedMatcher().find_all(tiny_graph, friend_visit_pattern)
        }
        assert vf2_anchors == guided_anchors


class TestGuidedSpecifics:
    def test_sketch_pruning_counts(self, tiny_graph, friend_visit_pattern):
        matcher = GuidedMatcher(use_sketch_pruning=True)
        matcher.match_set(tiny_graph, friend_visit_pattern)
        # Pruning may or may not trigger on this tiny graph, but the counter
        # must never be negative and caches must be populated.
        assert matcher.statistics.sketch_prunes >= 0
        matcher.clear_caches()

    def test_invalid_sketch_hops(self):
        with pytest.raises(ValueError):
            GuidedMatcher(sketch_hops=0)

    def test_pruning_disabled_agrees(self, g1, r7):
        with_pruning = GuidedMatcher(use_sketch_pruning=True)
        without_pruning = GuidedMatcher(use_sketch_pruning=False)
        assert with_pruning.match_set(g1, r7.pr_pattern()) == without_pruning.match_set(
            g1, r7.pr_pattern()
        )


class TestLocalityMatcher:
    def test_agrees_with_global_when_radius_sufficient(self, g1, r7):
        local = LocalityMatcher(VF2Matcher(), radius=2)
        globally = VF2Matcher()
        assert local.match_set(g1, r7.pr_pattern()) == globally.match_set(
            g1, r7.pr_pattern()
        )

    def test_unknown_anchor_returns_none(self, g1, r7):
        local = LocalityMatcher(VF2Matcher(), radius=2)
        assert local.find_match_at(g1, r7.pr_pattern(), "ghost") is None

    def test_radius_defaults_to_pattern_radius(self, g1, r1):
        local = LocalityMatcher(VF2Matcher(), radius=None)
        assert local.match_set(g1, r1.pr_pattern()) == {"cust1", "cust2", "cust3"}

    def test_ball_cache_can_be_cleared(self, g1, r7):
        local = LocalityMatcher(VF2Matcher(), radius=2)
        local.match_set(g1, r7.pr_pattern())
        local.clear_caches()
        assert local.match_set(g1, r7.pr_pattern()) == {"cust1", "cust2", "cust3"}


class TestMultiPatternMatcher:
    def test_match_sets_agree_with_individual(self, g1, g1_rules):
        multi = MultiPatternMatcher(GuidedMatcher())
        combined = multi.match_sets(g1, list(g1_rules))
        single = VF2Matcher()
        for rule in g1_rules:
            assert combined[rule] == single.match_set(g1, rule.pr_pattern())

    def test_profile_filter_only_prunes_impossible(self, g1, g1_rules):
        with_filter = MultiPatternMatcher(VF2Matcher(), use_profile_filter=True)
        without_filter = MultiPatternMatcher(VF2Matcher(), use_profile_filter=False)
        assert with_filter.match_sets(g1, list(g1_rules)) == without_filter.match_sets(
            g1, list(g1_rules)
        )
        assert with_filter.statistics.profile_prunes >= 0

    def test_candidate_restriction(self, g1, r1):
        multi = MultiPatternMatcher(VF2Matcher())
        result = multi.match_sets(g1, [r1], candidates=["cust1", "cust5"])
        assert result[r1] == {"cust1"}

    def test_antecedent_match_sets(self, g1, r1):
        multi = MultiPatternMatcher(VF2Matcher())
        result = multi.antecedent_match_sets(g1, [r1])
        assert result[r1] == {"cust1", "cust2", "cust3", "cust5"}

    def test_empty_rule_list(self, g1):
        multi = MultiPatternMatcher(VF2Matcher())
        assert multi.match_sets(g1, []) == {}
