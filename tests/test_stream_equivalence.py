"""Randomized equivalence: streaming repair == from-scratch recompute.

The acceptance gate of the streaming subsystem: across 50 seeded
(graph, update-batch) pairs,

* a delta-patched :class:`~repro.graph.index.FragmentIndex` is
  **byte-identical** to a freshly built one — layer contents and sketches —
  and VF2 / guided / dual-simulation matchers probing it produce the same
  match sets either way;
* :meth:`MatchStore.repair` leaves exactly the entries a fresh
  materialization on the mutated graph would produce;
* a :class:`~repro.stream.StreamingIdentifier` maintained across batches
  reports identifications and confidences byte-identical to
  ``identify_entities`` re-run from scratch on the mutated graph — across
  the sequential/threads/processes backends and both Match and Matchc;
* DMine runs against the repaired resident state mine byte-identical rules
  to runs on a pristine copy of the same mutated graph, on every backend.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.graph import FragmentIndex, graph_index
from repro.identification import identify_entities
from repro.matching import (
    DeltaMatcher,
    GuidedMatcher,
    MatchStore,
    SimulationMatcher,
    VF2Matcher,
)
from repro.mining import DMineConfig, dmine
from repro.parallel.executor import BACKENDS
from repro.stream import MaintainedMatchView, StreamingIdentifier, random_update_batch

SEEDS = range(50)


def _workload_graph(seed: int):
    """One seeded random graph (updates are sampled lazily while applying,
    so each batch is valid against the state the previous ones left)."""
    return synthetic_graph(
        num_nodes=60 + (seed % 5) * 15,
        num_edges=180 + (seed % 7) * 40,
        num_node_labels=4 + (seed % 3),
        num_edge_labels=3,
        seed=seed,
    )


def _apply_batches(graph, seed: int, count: int, size: int = 7):
    applied = []
    for position in range(count):
        batch = random_update_batch(graph, size=size, seed=seed * 100 + position)
        batch.apply(graph)
        applied.append(batch)
    return applied


def _matcher(kind: str):
    if kind == "guided":
        return GuidedMatcher()
    if kind == "simulation":
        return SimulationMatcher()
    return VF2Matcher()


@pytest.mark.parametrize("seed", SEEDS)
def test_patched_index_is_byte_identical_to_fresh_build(seed):
    """Interleaved mutations + delta refresh == a from-scratch index.

    The graph is large relative to the batches so ``refresh()`` provably
    takes the ``apply_delta`` patch path (the touched region stays under the
    rebuild-fraction heuristic) — the small-graph rebuild fallback is
    covered separately in ``tests/test_stream.py``.
    """
    graph = synthetic_graph(
        num_nodes=200 + (seed % 5) * 20,
        num_edges=600 + (seed % 7) * 60,
        num_node_labels=4 + (seed % 3),
        num_edge_labels=3,
        seed=seed,
    )
    index = FragmentIndex(graph)
    nodes = sorted(graph.nodes(), key=str)
    for node in nodes[: len(nodes) // 3]:
        index.sketch(node)
        for label in sorted(graph.edge_labels()):
            index.out_neighbors(node, label)
            index.in_neighbors(node, label)
    # Interleave batch updates with plain single mutations.
    _apply_batches(graph, seed, count=2, size=5)
    graph.add_node(f"solo-{seed}", sorted(graph.node_labels())[0])
    index.refresh()
    assert index.statistics.builds == 1, "refresh must patch, not rebuild"
    fresh = FragmentIndex(graph)
    assert index._labels == fresh._labels
    assert index._nodes_by_label == fresh._nodes_by_label
    assert index._profiles == fresh._profiles
    for node in sorted(graph.nodes(), key=str):
        assert index.sketch(node) == fresh.sketch(node)
        for label in sorted(graph.edge_labels()):
            assert index.out_neighbors(node, label) == fresh.out_neighbors(node, label)
            assert index.in_neighbors(node, label) == fresh.in_neighbors(node, label)


@pytest.mark.parametrize("kind", ["vf2", "guided", "simulation"])
@pytest.mark.parametrize("seed", range(0, 50, 2))
def test_matchers_agree_on_patched_index(seed, kind):
    """Match sets probed through a patched index == through a fresh one."""
    graph = _workload_graph(seed)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(graph, predicate, count=2, max_pattern_edges=3, d=2, seed=seed)
    graph_index(graph)  # build + register the resident index
    matcher = _matcher(kind)
    for rule in rules:  # warm the resident index with real traffic
        matcher.match_set(graph, rule.pr_pattern())
    _apply_batches(graph, seed, count=2)
    oracle = _matcher(kind)
    pristine = graph.copy()  # fresh graph object => fresh resident index
    for rule in rules:
        for pattern in (rule.antecedent, rule.pr_pattern()):
            patched = matcher.match_set(graph, pattern)
            fresh = oracle.match_set(pristine, pattern)
            assert patched == fresh, (seed, kind, pattern)


@pytest.mark.parametrize("kind", ["vf2", "guided"])
@pytest.mark.parametrize("seed", SEEDS)
def test_repaired_store_equals_fresh_materialization(seed, kind):
    """Repaired entries == materializing from scratch on the mutated graph."""
    graph = _workload_graph(seed)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(graph, predicate, count=2, max_pattern_edges=3, d=2, seed=seed)
    matcher = _matcher(kind)
    store = MatchStore(graph)
    delta_matcher = DeltaMatcher(graph, matcher, store)
    patterns = [rule.pr_pattern() for rule in rules]
    for pattern in patterns:
        candidates = sorted(graph.nodes_with_label(pattern.label(pattern.x)), key=str)
        delta_matcher.materialize(pattern, candidates)
    _apply_batches(graph, seed, count=2)
    store.repair(matcher)
    oracle = _matcher(kind)
    for pattern in patterns:
        entry = store.get(pattern)
        if entry is None:
            continue  # dropped as unrepairable: the exact-fallback path
        candidates = sorted(graph.nodes_with_label(pattern.label(pattern.x)), key=str)
        expected = oracle.match_set(graph, pattern, candidates=candidates)
        assert entry.matches & set(candidates) == expected, (seed, kind)
        # Complete streams must hold exactly the fresh enumeration.
        for center in sorted(entry.matches, key=str)[:4]:
            stream = entry.streams.get(center)
            if stream is None:
                continue
            while stream.ensure(len(stream.pulled) + 1):
                pass
            if stream.complete:
                fresh = {
                    tuple(mapping[node] for node in entry.node_order)
                    for mapping in oracle.iter_matches_at(graph, pattern, center)
                }
                assert set(stream.pulled) == fresh, (seed, kind, center)


@pytest.mark.parametrize("kind", ["vf2", "guided"])
@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_maintained_view_equals_rematching(seed, kind):
    """MaintainedMatchView across batches == fresh match_set per batch."""
    graph = _workload_graph(seed)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(graph, predicate, count=3, max_pattern_edges=3, d=2, seed=seed)
    patterns = [rule.pr_pattern() for rule in rules]  # PR is always connected
    view = MaintainedMatchView(graph, patterns, _matcher(kind))
    for position in range(3):
        batch = random_update_batch(graph, size=6, seed=seed * 31 + position)
        view.apply(batch)
        oracle = _matcher(kind)
        for pattern in patterns:
            assert view.match_set(pattern) == frozenset(
                oracle.match_set(graph, pattern)
            ), (seed, kind, position)


def _eip_fingerprint(result):
    return (
        tuple(sorted(map(str, result.identified))),
        tuple(
            sorted(
                (rule.name, round(confidence, 9))
                for rule, confidence in result.rule_confidences.items()
            )
        ),
        tuple(
            sorted(
                (rule.name, tuple(sorted(map(str, matches))))
                for rule, matches in result.rule_matches.items()
            )
        ),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_streaming_identifier_equals_recompute(seed):
    """Maintained EIP answer == from-scratch run, after every batch."""
    graph = _workload_graph(seed)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(graph, predicate, count=3, max_pattern_edges=3, d=2, seed=seed)
    with StreamingIdentifier(
        graph, rules, eta=0.5, num_workers=2 + seed % 3, seed=0
    ) as identifier:
        assert _eip_fingerprint(identifier.result) == _eip_fingerprint(
            identifier.recompute()
        )
        for position in range(2):
            batch = random_update_batch(graph, size=7, seed=seed * 100 + position)
            identifier.apply(batch)
            assert _eip_fingerprint(identifier.result) == _eip_fingerprint(
                identifier.recompute()
            ), (seed, position)


@pytest.mark.parametrize("use_index", [True, False])
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ["match", "matchc"])
def test_streaming_identifier_across_backends(backend, algorithm, use_index):
    """Every backend and solver maintains the same answer over one sequence.

    ``use_index=False`` additionally exercises the matchers' private
    (non-resident) caches across mutations — the warm-matcher staleness
    path that worker contexts keep alive between batches.
    """
    base = synthetic_graph(120, 360, num_node_labels=5, num_edge_labels=3, seed=9)
    predicate = most_frequent_predicates(base, top=1)[0]
    rules = generate_gpars(base, predicate, count=4, max_pattern_edges=3, d=2, seed=9)
    graph = base.copy()
    with StreamingIdentifier(
        graph,
        rules,
        eta=0.5,
        num_workers=3,
        seed=0,
        backend=backend,
        executor_workers=2,
        algorithm=algorithm,
        use_index=use_index,
    ) as identifier:
        for position in range(2):
            batch = random_update_batch(graph, size=7, seed=900 + position)
            identifier.apply(batch)
        maintained = _eip_fingerprint(identifier.result)
        # Compare against a sequential from-scratch run on an equal mutated
        # copy: one fingerprint across every backend x solver x mode.
        fresh = identify_entities(
            identifier.graph,
            list(rules),
            eta=0.5,
            num_workers=3,
            algorithm=algorithm,
        )
    assert maintained == _eip_fingerprint(fresh), (backend, algorithm)


def _dmine_fingerprint(result):
    return sorted(
        (
            rule.name,
            info.support,
            round(info.confidence, 9),
            tuple(sorted(map(str, info.matches))),
        )
        for rule, info in result.all_rules.items()
    )


# ----------------------------------------------------------------------
# free-y (census-maintained) rules: whole-graph matching semantics
# ----------------------------------------------------------------------
def _census_oracle_check(identifier, rules):
    """Maintained antecedent verdicts == whole-graph VF2 on the full pattern.

    The oracle matches each rule's *full* antecedent (free y included)
    against the whole graph — the semantics the census decomposition claims
    to reproduce, injectivity coupling and all.
    """
    from repro.stream.identifier import census_feasible

    graph = identifier.graph
    oracle = VF2Matcher(use_index=False)
    counts = graph.node_label_counts()
    for rule in rules:
        expected = {
            center
            for center in graph.nodes_with_label(rule.x_label)
            if oracle.exists_match_at(graph, rule.antecedent, center)
        }
        maintained = set().union(
            *(
                report.antecedent_sets.get(rule, set())
                for report in identifier._reports.values()
            )
        )
        requirements = identifier._census_requirements.get(rule)
        if requirements is not None and not census_feasible(requirements, counts):
            maintained = set()
        assert maintained == expected, rule.name


def _free_y_rules(graph, predicate, count=3):
    """Mine Σ with DMine and keep the free-y rules (the ROADMAP's shape)."""
    from repro.exceptions import PatternError
    from repro.pattern.radius import pattern_radius
    from repro.stream import split_free_pattern

    config = DMineConfig(
        k=6,
        d=2,
        sigma=1,
        num_workers=2,
        max_edges=2,
        max_extensions_per_rule=6,
        max_rules_per_round=10,
    )
    result = dmine(graph, predicate, config)
    free = []
    for rule in sorted(result.all_rules, key=lambda r: r.name):
        try:
            pattern_radius(rule.antecedent, rule.antecedent.x)
        except PatternError:
            if split_free_pattern(rule.antecedent) is not None:
                free.append(rule)
    return free[:count]


@pytest.mark.parametrize("seed", range(0, 50, 10))
def test_census_maintained_free_y_rules_equal_whole_graph_matching(seed):
    """Mined free-y Σ is maintained under updates with global semantics."""
    graph = _workload_graph(seed)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = _free_y_rules(graph, predicate)
    if not rules:
        pytest.skip("this seed mined no free-y rules")
    with StreamingIdentifier(
        graph, rules, eta=0.5, num_workers=2 + seed % 3, seed=0
    ) as identifier:
        assert identifier._census_parts, "mined free-y rules must census-split"
        _census_oracle_check(identifier, rules)
        for position in range(3):
            batch = random_update_batch(graph, size=7, seed=seed * 100 + position)
            identifier.apply(batch)
            _census_oracle_check(identifier, rules)


def test_census_injectivity_couples_free_and_anchored_labels():
    """A free node sharing the x label needs a *second* node of that label."""
    from repro.graph import Graph
    from repro.pattern.gpar import GPAR
    from repro.pattern.pattern import Pattern
    from repro.stream import UpdateBatch, UpdateOp

    graph = Graph(name="census-toy")
    graph.add_node("c1", "cust")
    graph.add_node("m1", "shop")
    graph.add_edge("c1", "m1", "visit")
    antecedent = Pattern(
        nodes={"x": "cust", "v1": "shop", "y": "cust"},
        edges=[("x", "v1", "visit")],
        x="x",
        y="y",
    )
    rule = GPAR(antecedent, consequent_label="buys", validate=False)
    oracle = VF2Matcher(use_index=False)
    with StreamingIdentifier(graph, [rule], eta=0.5, num_workers=1) as identifier:
        # One cust total: the x-part matches at c1, but the isolated free y
        # (also cust-labelled) has no injective completion.
        assert not oracle.exists_match_at(graph, antecedent, "c1")
        assert identifier._infeasible_rules() == [rule]
        _census_oracle_check(identifier, [rule])
        identifier.apply(UpdateBatch.of(UpdateOp.add_node("c2", "cust")))
        assert oracle.exists_match_at(graph, antecedent, "c1")
        assert identifier._infeasible_rules() == []
        _census_oracle_check(identifier, [rule])
        # ...and dropping the second cust flips it back.
        identifier.apply(UpdateBatch.of(UpdateOp.remove_node("c2")))
        assert identifier._infeasible_rules() == [rule]
        _census_oracle_check(identifier, [rule])


def test_census_rule_with_extra_isolated_free_node():
    """Free nodes beyond y census-split too — PR included (disconnected PR)."""
    from repro.graph import Graph
    from repro.pattern.gpar import GPAR
    from repro.pattern.pattern import Pattern
    from repro.stream import UpdateBatch, UpdateOp

    graph = Graph(name="census-extra")
    graph.add_node("c1", "cust")
    graph.add_node("m1", "shop")
    graph.add_node("pz1", "prize")
    graph.add_node("p1", "promo")
    graph.add_edge("c1", "m1", "visit")
    graph.add_edge("c1", "pz1", "wins")
    antecedent = Pattern(
        nodes={"x": "cust", "v1": "shop", "y": "prize", "z": "promo"},
        edges=[("x", "v1", "visit")],
        x="x",
        y="y",  # y AND z are isolated: PR (with the wins edge) stays disconnected
    )
    rule = GPAR(antecedent, consequent_label="wins", validate=False)
    oracle = VF2Matcher(use_index=False)
    with StreamingIdentifier(graph, [rule], eta=0.5, num_workers=1) as identifier:
        assert rule in identifier._census_pr_requirements
        assert oracle.exists_match_at(graph, antecedent, "c1")
        assert oracle.exists_match_at(graph, rule.pr_pattern(), "c1")
        _census_oracle_check(identifier, [rule])
        assert identifier.result.rule_matches[rule] == frozenset({"c1"})
        # Removing the only promo node starves both censuses: the rule
        # matches nowhere, exactly as whole-graph matching says.
        identifier.apply(UpdateBatch.of(UpdateOp.remove_node("p1")))
        assert not oracle.exists_match_at(graph, antecedent, "c1")
        assert not oracle.exists_match_at(graph, rule.pr_pattern(), "c1")
        assert identifier._infeasible_rules() == [rule]
        assert identifier._pr_infeasible_rules() == [rule]
        _census_oracle_check(identifier, [rule])
        assert identifier.result.rule_matches[rule] == frozenset()
        # ...and a new promo node restores it without any recheck nearby.
        identifier.apply(UpdateBatch.of(UpdateOp.add_node("p2", "promo")))
        assert identifier.result.rule_matches[rule] == frozenset({"c1"})
        _census_oracle_check(identifier, [rule])


@pytest.mark.parametrize("backend", BACKENDS)
def test_census_rules_agree_across_backends(backend):
    """Free-y maintenance is backend-independent (census lives coordinator-side)."""
    base = _workload_graph(40)  # seed 40 is known to mine splittable free-y rules
    predicate = most_frequent_predicates(base, top=1)[0]
    rules = _free_y_rules(base, predicate)
    assert rules, "seed 40 must mine free-y rules (workload drifted?)"
    graph = base.copy()
    with StreamingIdentifier(
        graph,
        rules,
        eta=0.5,
        num_workers=3,
        seed=0,
        backend=backend,
        executor_workers=2,
    ) as identifier:
        for position in range(2):
            identifier.apply(random_update_batch(graph, size=7, seed=600 + position))
        _census_oracle_check(identifier, rules)


def test_static_and_streaming_agree_on_free_pattern_rules():
    """``identify_entities`` and the streaming path agree on census-split Σ.

    The antecedents' free parts — an isolated prize node, and an
    edge-carrying promo→prize component — have their only witnesses outside
    the d-ball of the second customer, so any *per-fragment* resolution of
    the free part gets ``c2`` wrong.  Both paths must consult the same
    global census: before the shared ``plan_census``/``apply_census`` route
    the static solvers resolved free nodes inside each fragment graph
    (partition-dependent answers; ``c2`` silently dropped with two workers)
    and the streaming identifier rejected the edged component outright, so
    this test fails on that code.
    """
    from repro.graph import Graph
    from repro.pattern.gpar import GPAR
    from repro.pattern.pattern import Pattern

    graph = Graph(name="census-cross-path")
    for node, label in [
        ("c1", "cust"),
        ("c2", "cust"),
        ("m1", "shop"),
        ("m2", "shop"),
        ("pz1", "prize"),
        ("p1", "promo"),
    ]:
        graph.add_node(node, label)
    graph.add_edge("c1", "m1", "visit")
    graph.add_edge("c2", "m2", "visit")
    graph.add_edge("c1", "pz1", "wins")
    # LCWA-negative: c2 has a wins edge, but not to a prize node.
    graph.add_edge("c2", "m2", "wins")
    graph.add_edge("p1", "pz1", "sponsors")

    free_y = GPAR(
        Pattern(
            nodes={"x": "cust", "v1": "shop", "y": "prize"},
            edges=[("x", "v1", "visit")],
            x="x",
            y="y",
        ),
        consequent_label="wins",
        validate=False,
    )
    edged = GPAR(
        Pattern(
            nodes={"x": "cust", "v1": "shop", "y": "prize", "z": "promo"},
            edges=[("x", "v1", "visit"), ("z", "y", "sponsors")],
            x="x",
            y="y",
        ),
        consequent_label="wins",
        validate=False,
    )
    rules = [free_y, edged]
    oracle = VF2Matcher(use_index=False)
    # Whole-graph truth: both antecedents match at both customers (pz1 and
    # p1→pz1 are global witnesses), while only c1 carries the consequent.
    for rule in rules:
        assert oracle.match_set(graph, rule.antecedent) == {"c1", "c2"}
        assert oracle.match_set(graph, rule.pr_pattern()) == {"c1"}
    for algorithm in ("match", "matchc"):
        static = identify_entities(
            graph.copy(), rules, eta=0.5, num_workers=2, algorithm=algorithm
        )
        for rule in rules:
            # c2 contributes a global-census q̄-match, so supp(Qq̄) = 1 and
            # conf = 1·1/(1·1); per-fragment resolution missed it (conf=inf).
            assert static.rule_matches[rule] == frozenset({"c1"}), algorithm
            assert static.rule_confidences[rule] == 1.0, algorithm
        with StreamingIdentifier(
            graph.copy(), rules, eta=0.5, num_workers=2, algorithm=algorithm
        ) as identifier:
            assert _eip_fingerprint(static) == _eip_fingerprint(identifier.result)
            assert static.rule_confidences == identifier.result.rule_confidences


@pytest.mark.parametrize("algorithm", ["match", "matchc"])
def test_static_and_streaming_agree_on_mined_free_y_workload(algorithm):
    """Cross-path agreement on a *mined* Σ with splittable free-y rules."""
    base = _workload_graph(40)  # seed 40 is known to mine splittable free-y rules
    predicate = most_frequent_predicates(base, top=1)[0]
    rules = _free_y_rules(base, predicate)
    assert rules, "seed 40 must mine free-y rules (workload drifted?)"
    graph = base.copy()
    with StreamingIdentifier(
        graph, rules, eta=0.5, num_workers=3, algorithm=algorithm
    ) as identifier:
        identifier.apply(random_update_batch(graph, size=7, seed=601))
        static = identify_entities(
            graph.copy(), rules, eta=0.5, num_workers=3, algorithm=algorithm
        )
        assert _eip_fingerprint(static) == _eip_fingerprint(identifier.result)
        assert static.rule_confidences == identifier.result.rule_confidences


@pytest.mark.parametrize("backend", BACKENDS)
def test_dmine_on_repaired_state_equals_pristine(backend):
    """Mining after streaming repairs == mining a pristine mutated copy.

    The mutated graph object carries a delta-patched resident index and a
    repaired match-store history; a fresh copy of the same graph carries
    neither.  DMine must mine byte-identical rules from both.
    """
    graph = synthetic_graph(150, 450, num_node_labels=6, num_edge_labels=4, seed=4)
    predicate = most_frequent_predicates(graph, top=1)[0]
    graph_index(graph)  # resident index that the updates will delta-patch
    store = MatchStore(graph)
    delta_matcher = DeltaMatcher(graph, VF2Matcher(), store)
    rules = generate_gpars(graph, predicate, count=2, max_pattern_edges=2, d=2, seed=4)
    for rule in rules:
        pattern = rule.pr_pattern()
        delta_matcher.materialize(
            pattern, sorted(graph.nodes_with_label(pattern.label(pattern.x)), key=str)
        )
    _apply_batches(graph, seed=5, count=2)
    graph_index(graph).refresh()  # delta path
    store.repair(VF2Matcher())
    config = DMineConfig(
        k=3,
        d=2,
        sigma=1,
        num_workers=2,
        max_edges=3,
        max_extensions_per_rule=6,
        max_rules_per_round=10,
        backend=backend,
        executor_workers=2,
    )
    repaired_run = dmine(graph, predicate, config)
    pristine_run = dmine(graph.copy(), predicate, config)
    assert _dmine_fingerprint(repaired_run) == _dmine_fingerprint(pristine_run)
