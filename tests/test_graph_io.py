"""Serialisation round-trips for graphs."""

import pytest

from repro.graph import (
    Graph,
    graph_from_dict,
    graph_to_dict,
    load_edge_list,
    load_graph_json,
    save_edge_list,
    save_graph_json,
)


@pytest.fixture
def sample() -> Graph:
    graph = Graph(name="sample")
    graph.add_node("u1", "user", {"age": 30})
    graph.add_node("u2", "user")
    graph.add_node("c", "city")
    graph.add_edge("u1", "u2", "follow")
    graph.add_edge("u1", "c", "live_in")
    graph.add_edge("u2", "c", "live_in")
    return graph


class TestDictRoundTrip:
    def test_roundtrip_preserves_structure(self, sample):
        rebuilt = graph_from_dict(graph_to_dict(sample))
        assert rebuilt.structure_equal(sample)
        assert rebuilt.name == "sample"

    def test_roundtrip_preserves_attrs(self, sample):
        rebuilt = graph_from_dict(graph_to_dict(sample))
        assert rebuilt.node_attrs("u1") == {"age": 30}

    def test_dict_shape(self, sample):
        document = graph_to_dict(sample)
        assert {node["id"] for node in document["nodes"]} == {"u1", "u2", "c"}
        assert len(document["edges"]) == 3


class TestJsonFiles:
    def test_json_roundtrip(self, sample, tmp_path):
        path = tmp_path / "graph.json"
        save_graph_json(sample, path)
        loaded = load_graph_json(path)
        assert loaded.structure_equal(sample)

    def test_json_file_is_readable_text(self, sample, tmp_path):
        path = tmp_path / "graph.json"
        save_graph_json(sample, path)
        assert '"label": "user"' in path.read_text()


class TestEdgeListFiles:
    def test_edge_list_roundtrip(self, sample, tmp_path):
        path = tmp_path / "graph.tsv"
        save_edge_list(sample, path)
        loaded = load_edge_list(path)
        # Edge-list format stores endpoints as strings; structure must agree.
        assert loaded.num_nodes == sample.num_nodes
        assert loaded.num_edges == sample.num_edges
        assert loaded.has_edge("u1", "u2", "follow")

    def test_edge_list_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("# comment\n\nu1\tuser\tu2\tuser\tfollow\n")
        loaded = load_edge_list(path)
        assert loaded.num_edges == 1

    def test_edge_list_malformed_row(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("u1\tuser\tu2\n")
        with pytest.raises(ValueError):
            load_edge_list(path)
