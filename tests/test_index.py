"""Unit tests of the fragment-resident graph index (repro.graph.index)."""

from __future__ import annotations

import pytest

from repro.datasets import synthetic_graph
from repro.exceptions import NodeNotFoundError, StaleIndexError
from repro.graph import (
    FragmentIndex,
    Graph,
    build_sketch,
    discard_index,
    empty_sketch,
    graph_index,
    registered_index,
)
from repro.matching.candidates import adjacency_profile


def toy_graph() -> Graph:
    g = Graph(name="toy")
    g.add_node("alice", "cust")
    g.add_node("bob", "cust")
    g.add_node("cafe", "restaurant")
    g.add_node("loner", "cust")
    g.add_edge("alice", "cafe", "visit")
    g.add_edge("bob", "cafe", "visit")
    g.add_edge("alice", "bob", "friend")
    return g


class TestVersionCounter:
    def test_every_mutation_bumps_version(self):
        g = Graph()
        v = g.version
        g.add_node("a", "x")
        assert g.version > v
        v = g.version
        g.add_node("b", "x")
        g.add_edge("a", "b", "e")
        assert g.version > v
        v = g.version
        g.remove_edge("a", "b", "e")
        assert g.version > v
        v = g.version
        g.relabel_node("a", "y")
        assert g.version > v
        v = g.version
        g.remove_node("b")
        assert g.version > v

    def test_noop_mutations_do_not_bump(self):
        g = toy_graph()
        v = g.version
        g.add_node("alice", "cust")  # re-add, same label
        g.add_edge("alice", "cafe", "visit")  # duplicate edge
        g.relabel_node("alice", "cust")  # same label
        assert g.version == v

    def test_relabel_updates_label_buckets(self):
        g = toy_graph()
        g.relabel_node("loner", "vip")
        assert g.nodes_with_label("vip") == {"loner"}
        assert "loner" not in g.nodes_with_label("cust")

    def test_relabel_unknown_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            toy_graph().relabel_node("ghost", "x")


class TestIndexLayers:
    def test_label_layer_matches_graph(self):
        g = toy_graph()
        index = FragmentIndex(g)
        assert index.nodes_with_label("cust") == g.nodes_with_label("cust")
        assert index.count_nodes_with_label("restaurant") == 1
        assert index.nodes_with_label("missing") == frozenset()
        assert index.node_label("cafe") == "restaurant"
        with pytest.raises(NodeNotFoundError):
            index.node_label("ghost")

    def test_profiles_match_unindexed_computation(self):
        g = synthetic_graph(60, 180, num_node_labels=5, num_edge_labels=3, seed=11)
        index = FragmentIndex(g)
        for node in g.nodes():
            assert dict(index.profile(node)) == adjacency_profile(g, node)
        with pytest.raises(NodeNotFoundError):
            index.profile("ghost")

    def test_adjacency_views_match_graph(self):
        g = toy_graph()
        index = FragmentIndex(g)
        assert index.out_neighbors("alice", "visit") == g.out_neighbors("alice", "visit")
        assert index.in_neighbors("cafe", "visit") == {"alice", "bob"}
        assert index.out_neighbors("loner", "visit") == frozenset()
        with pytest.raises(NodeNotFoundError):
            index.out_neighbors("ghost", "visit")

    def test_sketches_match_direct_builds(self):
        g = synthetic_graph(40, 120, num_node_labels=4, num_edge_labels=2, seed=3)
        index = FragmentIndex(g)
        for node in list(g.nodes())[:10]:
            assert index.sketch(node, 2) == build_sketch(g, node, 2)
        # Memoised: the same object comes back.
        node = next(iter(g.nodes()))
        assert index.sketch(node, 2) is index.sketch(node, 2)

    def test_invalid_construction_arguments(self):
        with pytest.raises(ValueError):
            FragmentIndex(toy_graph(), mode="whenever")
        with pytest.raises(ValueError):
            FragmentIndex(toy_graph(), default_hops=0)


class TestSketchFastPath:
    def test_isolated_node_skips_bfs(self, monkeypatch):
        g = toy_graph()
        index = FragmentIndex(g)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("BFS ran for an isolated node")

        monkeypatch.setattr("repro.graph.index.build_sketch", boom)
        sketch = index.sketch("loner", 2)
        assert sketch == empty_sketch("loner", 2)
        assert sketch.total_count() == 0
        assert index.statistics.sketch_fast_paths == 1
        assert index.statistics.sketches_built == 0
        # Memoised as well: the second probe is a cache hit, not another
        # fast-path materialisation.
        assert index.sketch("loner", 2) is sketch
        assert index.statistics.sketch_fast_paths == 1

    def test_connected_node_takes_bfs_path(self):
        g = toy_graph()
        index = FragmentIndex(g)
        index.sketch("alice", 2)
        assert index.statistics.sketches_built == 1
        assert index.statistics.sketch_fast_paths == 0

    def test_empty_sketch_shape(self):
        sketch = empty_sketch("n", 3)
        assert sketch.hops == 3
        assert sketch.distribution_at(1) == {}
        assert sketch.distribution_at(3) == {}
        with pytest.raises(ValueError):
            empty_sketch("n", 0)


class TestInvalidation:
    """A stale-index read must be impossible: refresh or raise, per mode."""

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda g: g.add_node("new", "cust"),
            lambda g: g.add_edge("bob", "alice", "friend"),
            lambda g: g.remove_edge("alice", "cafe", "visit"),
            lambda g: g.relabel_node("bob", "vip"),
            lambda g: g.remove_node("loner"),
        ],
        ids=["add-node", "add-edge", "remove-edge", "relabel", "remove-node"],
    )
    def test_refresh_mode_rebuilds_on_any_mutation(self, mutate):
        g = toy_graph()
        index = FragmentIndex(g, mode="refresh")
        index.sketch("alice", 2)  # warm a lazy layer too
        mutate(g)
        assert index.is_stale
        # Any probe refreshes; the answer reflects the mutated graph.
        assert index.nodes_with_label("cust") == g.nodes_with_label("cust")
        assert not index.is_stale
        assert index.statistics.refreshes == 1
        for node in g.nodes():
            assert dict(index.profile(node)) == adjacency_profile(g, node)

    @pytest.mark.parametrize(
        "probe",
        [
            lambda index: index.nodes_with_label("cust"),
            lambda index: index.count_nodes_with_label("cust"),
            lambda index: index.node_label("alice"),
            lambda index: index.profile("alice"),
            lambda index: index.out_neighbors("alice", "visit"),
            lambda index: index.in_neighbors("cafe", "visit"),
            lambda index: index.sketch("alice", 2),
        ],
        ids=["labels", "count", "node-label", "profile", "out", "in", "sketch"],
    )
    def test_raise_mode_rejects_every_probe(self, probe):
        g = toy_graph()
        index = FragmentIndex(g, mode="raise")
        g.add_node("new", "cust")
        with pytest.raises(StaleIndexError) as excinfo:
            probe(index)
        assert excinfo.value.current_version > excinfo.value.built_version

    def test_raise_mode_recovers_after_explicit_refresh(self):
        g = toy_graph()
        index = FragmentIndex(g, mode="raise")
        g.add_edge("bob", "alice", "friend")
        with pytest.raises(StaleIndexError):
            index.profile("alice")
        index.refresh()
        assert dict(index.profile("alice")) == adjacency_profile(g, "alice")

    def test_refresh_drops_stale_sketches_and_views(self):
        g = toy_graph()
        index = FragmentIndex(g)
        before = index.sketch("loner", 2)
        assert before.total_count() == 0
        g.add_edge("loner", "cafe", "visit")
        after = index.sketch("loner", 2)
        assert after.total_count() > 0
        assert index.out_neighbors("loner", "visit") == {"cafe"}


class TestRegistry:
    def test_graph_index_is_memoised_per_graph(self):
        g = toy_graph()
        assert registered_index(g) is None
        index = graph_index(g)
        assert graph_index(g) is index
        assert registered_index(g) is index

    def test_discard_index_forgets_the_graph(self):
        g = toy_graph()
        index = graph_index(g)
        assert discard_index(g) is True
        assert discard_index(g) is False
        assert graph_index(g) is not index

    def test_independent_graphs_get_independent_indexes(self):
        g1, g2 = toy_graph(), toy_graph()
        assert graph_index(g1) is not graph_index(g2)

    def test_registry_does_not_keep_graphs_alive(self):
        """The index holds its graph weakly: dropping the graph frees both."""
        import gc
        import weakref

        g = toy_graph()
        index = graph_index(g)
        graph_ref = weakref.ref(g)
        del g
        gc.collect()
        assert graph_ref() is None
        from repro.exceptions import GraphError

        with pytest.raises(GraphError):
            index.profile("alice")
