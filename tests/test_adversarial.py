"""The adversarial harness: storms, differential oracle, distillation.

Covers the ``repro.testing`` package end to end:

* every storm family samples valid, deterministic, self-consistent batches;
* the differential oracle reports **zero** divergences for the real code
  across all storm families (census-split rules included);
* a deliberately buggy matcher shim is caught, the failure is distilled to
  a handful of ops, and the distilled case fails against the shim while
  passing against the real code — the full find→shrink→replay loop;
* regression cases round-trip through their JSON format, and MinHash
  signatures deduplicate near-identical op streams.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.graph import Graph
from repro.matching import VF2Matcher
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern
from repro.stream import UpdateBatch, UpdateOp
from repro.testing import (
    DifferentialOracle,
    STORM_FAMILIES,
    distill,
    estimated_similarity,
    is_duplicate,
    minhash_signature,
)
from repro.testing.cases import (
    RegressionCase,
    case_from_dict,
    case_to_dict,
    from_distilled,
    rule_from_dict,
    rule_to_dict,
)


def _storm_graph(seed: int = 3) -> Graph:
    return synthetic_graph(
        num_nodes=80, num_edges=240, num_node_labels=5, num_edge_labels=3, seed=seed
    )


def _census_split_sigma(graph: Graph) -> list[GPAR]:
    """A Σ mixing connected, free-y and edge-component rules (one predicate)."""
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(graph, predicate, count=2, max_pattern_edges=2, d=2, seed=1)
    expanded = rules[0].antecedent.expanded()
    shared = {node: expanded.label(node) for node in expanded.nodes()}
    q_edge = predicate.edges()[0]
    free_y = GPAR(
        Pattern(
            nodes={**shared, "fz": predicate.label(predicate.y)},
            edges=list(expanded.edges()),
            x=expanded.x,
            y=expanded.y,
        ),
        consequent_label=rules[0].consequent_label,
        name="freeY",
        validate=False,
    )
    edged = GPAR(
        Pattern(
            nodes={
                **shared,
                "f1": predicate.label(predicate.x),
                "f2": predicate.label(predicate.y),
            },
            edges=list(expanded.edges()) + [("f1", "f2", q_edge.label)],
            x=expanded.x,
            y=expanded.y,
        ),
        consequent_label=rules[0].consequent_label,
        name="edgedC",
        validate=False,
    )
    return rules + [free_y, edged]


# ----------------------------------------------------------------------
# storm generators
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(STORM_FAMILIES))
def test_storms_sample_valid_deterministic_batches(family):
    """Same seed -> same ops; sequential application never raises."""
    sampler = STORM_FAMILIES[family]
    graph = _storm_graph()
    for position in range(4):
        batch = sampler(graph, size=6, seed=position)
        again = sampler(graph, size=6, seed=position)
        assert batch.ops == again.ops, family
        assert len(batch) > 0, family
        batch.apply(graph)  # raises on any invalid op


@pytest.mark.parametrize("family", sorted(set(STORM_FAMILIES) - {"random"}))
def test_storms_have_their_advertised_shape(family):
    graph = _storm_graph()
    batch = STORM_FAMILIES[family](graph, size=8, seed=0)
    kinds = {op.kind for op in batch}
    if family == "correlated-deletions":
        assert kinds <= {"remove_edge", "remove_node"}
    elif family == "label-flips":
        assert kinds == {"relabel_node"}
        flips: dict = {}
        for op in batch:
            flips[op.node] = flips.get(op.node, 0) + 1
        assert max(flips.values()) >= 2, "victims must flip repeatedly"
    elif family == "hub-churn":
        degree: dict = {}
        for edge in graph.edges():
            degree[edge.source] = degree.get(edge.source, 0) + 1
            degree[edge.target] = degree.get(edge.target, 0) + 1
        hub = max(degree, key=lambda node: (degree[node], str(node)))
        touching = [
            op for op in batch if hub in (op.node, op.source, op.target)
        ]
        assert len(touching) >= len(batch) // 2, "churn must centre on the hub"
    elif family == "ball-burst":
        assert any(op.kind.startswith("add") for op in batch)
        assert any(op.kind.startswith("remove") for op in batch)


# ----------------------------------------------------------------------
# differential oracle on the real code
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(STORM_FAMILIES))
def test_oracle_finds_no_divergence_in_real_code(family):
    graph = _storm_graph()
    rules = _census_split_sigma(graph)
    sampler = STORM_FAMILIES[family]
    scratch = graph.copy()
    batches = []
    for position in range(2):
        batch = sampler(scratch, size=6, seed=position)
        batches.append(batch)
        batch.apply(scratch)
    oracle = DifferentialOracle(rules, num_workers=2)
    report = oracle.run(graph, batches)
    assert report.ok, report.divergences[0].describe()
    assert report.checks > 0 and report.combos_run == 1


# ----------------------------------------------------------------------
# the find -> shrink -> replay loop, against a known-buggy shim
# ----------------------------------------------------------------------
class StaleRepairMatcher(VF2Matcher):
    """Deliberately buggy: refuses to re-enumerate after the graph moves on.

    Initial materialization (at the version first seen) is correct;
    any repair probe after an update finds nothing — the classic stale-
    cache bug the differential oracle exists to catch.
    """

    def __init__(self) -> None:
        super().__init__(use_index=False)
        self._frozen_version: int | None = None

    def iter_matches_at(self, graph, pattern, anchor_value):
        if self._frozen_version is None:
            self._frozen_version = graph.version
        if graph.version != self._frozen_version:
            return iter(())
        return super().iter_matches_at(graph, pattern, anchor_value)


def _shim_workload():
    graph = Graph(name="shim")
    graph.add_node("c1", "cust")
    graph.add_node("c2", "cust")
    graph.add_node("m1", "shop")
    graph.add_edge("c1", "m1", "visit")
    graph.add_edge("c2", "m1", "visit")
    graph.add_edge("c1", "m1", "wins")
    rule = GPAR(
        Pattern(
            nodes={"x": "cust", "y": "shop"},
            edges=[("x", "y", "visit")],
            x="x",
            y="y",
        ),
        consequent_label="wins",
        validate=False,
    )
    # Batch 0 tears a maintained match down, batch 1 restores it; the shim
    # cannot re-enumerate, so the maintained view misses the restored match.
    # The padding ops are noise the distiller must strip away.
    batches = [
        UpdateBatch.of(
            UpdateOp.add_node("pad-1", "shop"),
            UpdateOp.remove_edge("c2", "m1", "visit"),
            UpdateOp.add_edge("pad-1", "m1", "visit"),
        ),
        UpdateBatch.of(
            UpdateOp.add_edge("c2", "m1", "visit"),
            UpdateOp.relabel_node("pad-1", "shop"),
        ),
    ]
    return graph, [rule], batches


def test_oracle_catches_buggy_matcher_and_distills_it():
    graph, rules, batches = _shim_workload()
    buggy = DifferentialOracle(
        rules, num_workers=1, view_matcher_factory=StaleRepairMatcher
    )
    divergence = buggy.check(graph, batches)
    assert divergence is not None, "the harness must catch the stale shim"
    assert divergence.component == "matchview"

    distilled = distill(graph, batches, buggy.checker_for(divergence), radius=1)
    # The essence is remove + re-add of one maintained edge: <= 3 ops
    # across <= 2 batches, on a graph peeled to the touched ball.
    assert distilled.num_ops <= 3
    assert len(distilled.batches) <= 2
    assert distilled.graph.num_nodes <= graph.num_nodes
    assert distilled.divergence.component == "matchview"

    case = from_distilled(
        "stale-shim",
        "synthetic: stale repair matcher misses restored matches",
        distilled,
        rules,
        config={"num_workers": 1, "backend": "sequential", "use_index": True},
    )
    document = case_to_dict(case)
    loaded = case_from_dict(document)
    # Replayed against the shim: still fails.  Against the real code: clean.
    shim_oracle = DifferentialOracle(
        loaded.rules, num_workers=1, view_matcher_factory=StaleRepairMatcher
    )
    assert shim_oracle.check(loaded.graph, list(loaded.batches)) is not None
    assert loaded.replay() is None


# ----------------------------------------------------------------------
# case format + MinHash dedup
# ----------------------------------------------------------------------
def test_case_json_roundtrip(tmp_path):
    graph, rules, batches = _shim_workload()
    case = RegressionCase(
        name="roundtrip",
        description="format check",
        graph=graph,
        rules=tuple(rules),
        batches=tuple(batches),
        config={"num_workers": 1, "backend": "sequential", "use_index": True},
        signature=minhash_signature(batches),
        divergence={"component": "matchview", "batch_index": 1},
    )
    from repro.testing.cases import load_case, write_case

    path = write_case(case, tmp_path)
    loaded = load_case(path)
    assert case_to_dict(loaded) == case_to_dict(case)
    assert [rule.name for rule in loaded.rules] == [rule.name for rule in rules]
    assert loaded.batches == tuple(batches)
    # The rule dict form round-trips free-pattern rules the strict GPAR
    # constructor would reject.
    assert rule_from_dict(rule_to_dict(rules[0])).antecedent == rules[0].antecedent


def test_minhash_dedup_flags_near_duplicates():
    graph = _storm_graph()
    batch = STORM_FAMILIES["correlated-deletions"](graph, size=10, seed=0)
    same = minhash_signature([batch])
    # One extra op out of eleven: still the same counterexample.
    near = minhash_signature(
        [batch, UpdateBatch.of(UpdateOp.add_node("extra", "pad"))]
    )
    other = minhash_signature([STORM_FAMILIES["label-flips"](graph, size=10, seed=5)])
    assert estimated_similarity(same, same) == 1.0
    assert estimated_similarity(same, near) > estimated_similarity(same, other)
    assert is_duplicate(near, [same])
    assert not is_duplicate(other, [same])


def test_distill_rejects_passing_runs():
    graph, rules, batches = _shim_workload()
    clean = DifferentialOracle(rules, num_workers=1)
    with pytest.raises(ValueError):
        distill(graph, batches, clean.check)
