"""Tests for entity identification (EIP): Match, Matchc, disVF2, sequential."""

import pytest

from repro.datasets import generate_gpars
from repro.exceptions import IdentificationError
from repro.identification import (
    DisVF2,
    EIPConfig,
    Match,
    MatchC,
    identify_entities,
    identify_sequential,
)
from repro.metrics import evaluate_rule, predicate_stats


class TestConfig:
    def test_valid(self):
        config = EIPConfig(eta=1.5, num_workers=4)
        assert config.eta == 1.5

    def test_invalid_eta(self):
        with pytest.raises(IdentificationError):
            EIPConfig(eta=0.0)

    def test_invalid_workers(self):
        with pytest.raises(IdentificationError):
            EIPConfig(eta=1.0, num_workers=0)

    def test_unknown_algorithm(self, g1, r1):
        with pytest.raises(IdentificationError):
            identify_entities(g1, [r1], algorithm="quantum")

    def test_empty_rule_set(self, g1):
        with pytest.raises(IdentificationError):
            identify_sequential(g1, [])

    def test_mixed_predicates_rejected(self, g1, r1, r4):
        with pytest.raises(IdentificationError):
            identify_sequential(g1, [r1, r4])


class TestSequentialReference:
    def test_example_rules_eta_half(self, g1, g1_rules):
        result = identify_sequential(g1, g1_rules, eta=0.5)
        assert result.identified == {"cust1", "cust2", "cust3", "cust4"}
        by_name = {rule.name: result.rule_confidences[rule] for rule in g1_rules}
        assert by_name["R1"] == pytest.approx(0.6)
        assert by_name["R5"] == pytest.approx(0.8)
        assert by_name["R8"] == pytest.approx(0.2)

    def test_eta_filters_rules(self, g1, g1_rules):
        strict = identify_sequential(g1, g1_rules, eta=0.7)
        assert strict.identified == {"cust1", "cust2", "cust3", "cust4"}
        stricter = identify_sequential(g1, g1_rules, eta=0.9)
        assert stricter.identified == set()

    def test_summary_readable(self, g1, g1_rules):
        result = identify_sequential(g1, g1_rules, eta=0.5)
        text = result.summary()
        assert "identified 4 potential customers" in text

    def test_confidence_of_accessor(self, g1, r1):
        result = identify_sequential(g1, [r1], eta=0.5)
        assert result.confidence_of(r1) == pytest.approx(0.6)


@pytest.mark.parametrize("algorithm", ["match", "matchc", "disvf2"])
class TestParallelAgreement:
    def test_paper_rules_agree_with_sequential(self, g1, g1_rules, algorithm):
        reference = identify_sequential(g1, g1_rules, eta=0.5)
        result = identify_entities(g1, g1_rules, eta=0.5, num_workers=3, algorithm=algorithm)
        assert result.identified == reference.identified
        for rule in g1_rules:
            assert result.rule_confidences[rule] == pytest.approx(
                reference.rule_confidences[rule]
            )
            assert result.rule_matches[rule] == reference.rule_matches[rule]

    def test_fake_account_rule(self, g2, r4, algorithm):
        reference = identify_sequential(g2, [r4], eta=0.1)
        result = identify_entities(g2, [r4], eta=0.1, num_workers=2, algorithm=algorithm)
        assert result.identified == reference.identified == {"acct1", "acct2", "acct3"}

    def test_worker_count_does_not_change_answer(self, g1, g1_rules, algorithm):
        answers = set()
        for workers in (1, 2, 4):
            result = identify_entities(
                g1, g1_rules, eta=0.5, num_workers=workers, algorithm=algorithm
            )
            answers.add(frozenset(result.identified))
        assert len(answers) == 1

    def test_workload_agreement_on_social_graph(
        self, small_googleplus, googleplus_major_predicate, algorithm
    ):
        rules = generate_gpars(
            small_googleplus,
            googleplus_major_predicate,
            count=6,
            max_pattern_edges=4,
            d=2,
            seed=9,
        )
        reference = identify_sequential(small_googleplus, rules, eta=1.0)
        result = identify_entities(
            small_googleplus, rules, eta=1.0, num_workers=4, algorithm=algorithm
        )
        assert result.identified == reference.identified
        for rule in rules:
            assert result.rule_confidences[rule] == pytest.approx(
                reference.rule_confidences[rule]
            )


class TestAlgorithmSpecifics:
    def test_match_examines_fewer_candidates_than_matchc(self, g1, g1_rules):
        """The shared adjacency-profile filter prunes candidate checks."""
        config = EIPConfig(eta=0.5, num_workers=2)
        optimized = Match(config).identify(g1, list(g1_rules))
        baseline = MatchC(config).identify(g1, list(g1_rules))
        assert optimized.identified == baseline.identified
        assert optimized.candidates_examined <= baseline.candidates_examined

    def test_timings_populated(self, g1, g1_rules):
        result = identify_entities(g1, g1_rules, eta=0.5, num_workers=3, algorithm="match")
        assert result.timings.num_rounds == 1
        assert result.timings.simulated_parallel_time >= 0.0

    def test_accepted_rules_have_confidence_above_eta(self, g1, g1_rules):
        result = identify_entities(g1, g1_rules, eta=0.5, num_workers=2, algorithm="matchc")
        for rule in result.accepted_rules:
            assert result.rule_confidences[rule] >= 0.5

    def test_identified_is_union_of_accepted_matches(self, g1, g1_rules):
        result = identify_entities(g1, g1_rules, eta=0.5, num_workers=2, algorithm="match")
        union = set()
        for rule in result.accepted_rules:
            union |= result.rule_matches[rule]
        assert result.identified == union

    def test_disvf2_is_exact(self, g1, g1_rules, visit_predicate):
        config = EIPConfig(eta=0.5, num_workers=2)
        result = DisVF2(config).identify(g1, list(g1_rules))
        stats = predicate_stats(g1, visit_predicate)
        for rule in g1_rules:
            assert result.rule_confidences[rule] == pytest.approx(
                evaluate_rule(g1, rule, stats=stats).confidence
            )
