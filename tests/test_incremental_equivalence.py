"""Randomized equivalence: delta-extended matching == full re-matching.

The incremental matcher (:mod:`repro.matching.incremental`) materializes a
parent pattern's matches and produces every one-edge child's match set by
probing only the new edge — with exact fallback whenever it can't.  This
suite drives ~50 seeded random graph/pattern pairs through VF2, guided
search and dual simulation, asserting the delta-extended match sets are
byte-identical to a full re-match, and additionally runs DMine / EIP
pipelines across all three execution backends × incremental on/off,
requiring identical results everywhere.  A dedicated class exercises the
:class:`MatchStore` lifecycle: ``Graph.version`` invalidation, canonical
witness reuse, truncation fallback and round-based retention.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.identification import identify_entities
from repro.matching import (
    DeltaMatcher,
    GuidedMatcher,
    MatchStore,
    SimulationMatcher,
    VF2Matcher,
    single_edge_delta,
)
from repro.mining import DMineConfig, dmine
from repro.mining.expansion import candidate_extensions
from repro.parallel.executor import BACKENDS

SEEDS = range(50)


def _matcher(kind: str):
    if kind == "guided":
        return GuidedMatcher()
    return VF2Matcher()


def _workload(seed: int):
    """One seeded random (graph, parent/child rule pairs) workload.

    Children are produced by the miner's own expansion step, so every pair
    differs by exactly the kind of single edge DMine generates.
    """
    graph = synthetic_graph(
        num_nodes=40 + (seed % 5) * 10,
        num_edges=120 + (seed % 7) * 30,
        num_node_labels=4 + (seed % 3),
        num_edge_labels=3,
        seed=seed,
    )
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(
        graph, predicate, count=2, max_pattern_edges=2, d=2, seed=seed
    )
    matcher = VF2Matcher()
    pairs = []
    for rule in rules:
        centers = sorted(matcher.match_set(graph, rule.antecedent), key=str)[:10]
        for child in candidate_extensions(
            graph, rule, centers, matcher, max_radius=3, max_extensions=3
        ):
            pairs.append((rule, child))
    return graph, pairs


@pytest.mark.parametrize("kind", ["vf2", "guided"])
@pytest.mark.parametrize("seed", SEEDS)
def test_delta_extension_equals_full_rematch(seed, kind):
    """Exact matchers: extend(parent entry, +1 edge) == match from scratch."""
    graph, pairs = _workload(seed)
    matcher = _matcher(kind)
    oracle = _matcher(kind)
    store = MatchStore(graph)
    delta_matcher = DeltaMatcher(graph, matcher, store)
    checked = 0
    for parent, child in pairs:
        for parent_pattern, child_pattern in (
            (parent.antecedent, child.antecedent),
            (parent.pr_pattern(), child.pr_pattern()),
        ):
            delta = single_edge_delta(parent_pattern, child_pattern)
            if delta is None:
                continue
            candidates = sorted(
                graph.nodes_with_label(parent_pattern.label(parent_pattern.x)), key=str
            )
            parent_set, entry = delta_matcher.materialize(parent_pattern, candidates)
            assert parent_set == oracle.match_set(
                graph, parent_pattern, candidates=candidates
            )
            assert entry is not None
            child_set, _ = delta_matcher.extend(entry, child_pattern, delta, candidates)
            assert child_set == oracle.match_set(
                graph, child_pattern, candidates=candidates
            )
            checked += 1
    if pairs:
        assert checked > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_simulation_falls_back_exactly(seed):
    """Dual simulation has no embeddings: the incremental wrapper must defer.

    ``materialize`` returns no entry (nothing to delta-extend later) and the
    match set must be the plain simulation match set.
    """
    graph, pairs = _workload(seed)
    matcher = SimulationMatcher()
    oracle = SimulationMatcher()
    store = MatchStore(graph)
    delta_matcher = DeltaMatcher(graph, matcher, store)
    for parent, _child in pairs[:2]:
        pattern = parent.antecedent
        assert not delta_matcher.supports(pattern)
        candidates = sorted(
            graph.nodes_with_label(pattern.label(pattern.x)), key=str
        )
        matches, entry = delta_matcher.materialize(pattern, candidates)
        assert entry is None
        assert matches == oracle.match_set(graph, pattern, candidates=candidates)
        assert len(store) == 0


def test_non_enumerating_matchers_are_not_materialized():
    """Matchers inheriting the base one-match ``iter_matches_at`` must defer.

    The base default yields at most one mapping, which would make a stream
    look provably complete after its first embedding; only genuine
    enumerators (VF2, guided) may feed the store.
    """
    from repro.matching import LocalityMatcher

    graph = synthetic_graph(40, 120, num_node_labels=4, num_edge_labels=3, seed=0)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rule = generate_gpars(graph, predicate, count=1, max_pattern_edges=2, seed=0)[0]
    store = MatchStore(graph)
    wrapped = LocalityMatcher(VF2Matcher(), radius=2)
    delta_matcher = DeltaMatcher(graph, wrapped, store)
    assert not delta_matcher.supports(rule.antecedent)
    candidates = sorted(
        graph.nodes_with_label(rule.antecedent.label(rule.x)), key=str
    )
    matches, entry = delta_matcher.materialize(rule.antecedent, candidates)
    assert entry is None
    assert matches == wrapped.match_set(graph, rule.antecedent, candidates=candidates)


def test_single_edge_delta_rejects_dropped_parent_node():
    """A child missing a (isolated) parent node yields None, not an error."""
    from repro.pattern.pattern import Pattern

    parent = Pattern(
        nodes={"x": "a", "y": "b", "z": "c"},
        edges=[("x", "y", "e")],
        x="x",
        y="y",
    )
    child = Pattern(
        nodes={"x": "a", "y": "b", "v1": "c"},
        edges=[("x", "y", "e"), ("x", "v1", "f")],
        x="x",
        y="y",
    )
    assert single_edge_delta(parent, child) is None


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_truncated_streams_still_exact(seed):
    """A cap of 1 forces constant truncation; fallback keeps results exact."""
    graph, pairs = _workload(seed)
    matcher = VF2Matcher()
    oracle = VF2Matcher()
    store = MatchStore(graph, cap=1)
    delta_matcher = DeltaMatcher(graph, matcher, store)
    for parent, child in pairs:
        delta = single_edge_delta(parent.antecedent, child.antecedent)
        if delta is None:
            continue
        candidates = sorted(
            graph.nodes_with_label(parent.antecedent.label(parent.x)), key=str
        )
        _, entry = delta_matcher.materialize(parent.antecedent, candidates)
        child_set, _ = delta_matcher.extend(entry, child.antecedent, delta, candidates)
        assert child_set == oracle.match_set(
            graph, child.antecedent, candidates=candidates
        )


class TestMatchStoreLifecycle:
    def _simple(self):
        graph = synthetic_graph(60, 180, num_node_labels=4, num_edge_labels=3, seed=1)
        predicate = most_frequent_predicates(graph, top=1)[0]
        rule = generate_gpars(graph, predicate, count=1, max_pattern_edges=2, seed=1)[0]
        return graph, rule

    def test_version_invalidation(self):
        """A graph mutation invalidates entries on the next probe."""
        graph, rule = self._simple()
        store = MatchStore(graph)
        delta_matcher = DeltaMatcher(graph, VF2Matcher(), store)
        pattern = rule.antecedent
        candidates = graph.nodes_with_label(pattern.label(pattern.x))
        _, entry = delta_matcher.materialize(pattern, sorted(candidates, key=str))
        assert store.get(pattern) is entry
        before = graph.version
        graph.add_node("fresh-node", "somewhere-new")
        assert graph.version > before
        assert store.get(pattern) is None  # evicted, not served stale
        assert store.statistics.stale_entries == 1
        assert len(store) == 0

    def test_canonical_witness_matches_find_match_at(self):
        """The stored first embedding is exactly the matcher's witness."""
        graph, rule = self._simple()
        matcher = VF2Matcher()
        store = MatchStore(graph)
        delta_matcher = DeltaMatcher(graph, matcher, store)
        pattern = rule.antecedent
        candidates = sorted(
            graph.nodes_with_label(pattern.label(pattern.x)), key=str
        )
        matches, entry = delta_matcher.materialize(pattern, candidates)
        assert entry.canonical_witness
        for center in matches:
            assert entry.witness_for(center) == VF2Matcher().find_match_at(
                graph, pattern, center
            )

    def test_retain_evicts_previous_level(self):
        graph, rule = self._simple()
        store = MatchStore(graph)
        delta_matcher = DeltaMatcher(graph, VF2Matcher(), store)
        candidates = sorted(
            graph.nodes_with_label(rule.antecedent.label(rule.x)), key=str
        )
        _, entry = delta_matcher.materialize(rule.antecedent, candidates)
        code = store.code_for(entry.pattern)
        _, pr_entry = delta_matcher.materialize(rule.pr_pattern(), candidates)
        assert len(store) == 2
        dropped = store.retain([code])
        assert dropped == 1
        assert store.get(rule.antecedent) is entry
        assert store.get(rule.pr_pattern()) is None
        assert pr_entry is not None

    def test_automorphic_sibling_misses(self):
        """An equal-code pattern with different node names must not be served."""
        from repro.pattern.pattern import Pattern

        graph, _rule = self._simple()
        labels = sorted({graph.node_label(node) for node in graph.nodes()})
        a, b = labels[0], labels[1 % len(labels)]
        pattern = Pattern(
            nodes={"x": a, "y": b, "v1": b},
            edges=[("x", "v1", "e0")],
            x="x",
            y="y",
        )
        renamed = Pattern(
            nodes={"x": a, "y": b, "w9": b},
            edges=[("x", "w9", "e0")],
            x="x",
            y="y",
        )
        assert pattern != renamed
        store = MatchStore(graph)
        delta_matcher = DeltaMatcher(graph, VF2Matcher(), store)
        candidates = sorted(graph.nodes_with_label(a), key=str)
        delta_matcher.materialize(pattern, candidates)
        # Same canonical structure, different node names: the embeddings
        # would not align with a caller's delta edge, so this must miss.
        assert store.code_for(pattern) == store.code_for(renamed)
        assert store.get(renamed) is None
        assert store.get(pattern) is not None


def _dmine_fingerprint(result):
    return sorted(
        (
            rule.name,
            info.support,
            round(info.confidence, 9),
            tuple(sorted(map(str, info.matches))),
        )
        for rule, info in result.all_rules.items()
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_dmine_equivalent_across_incremental_modes(backend):
    """DMine mines identical rules on each backend, incremental on or off."""
    graph = synthetic_graph(150, 450, num_node_labels=6, num_edge_labels=4, seed=2)
    predicate = most_frequent_predicates(graph, top=1)[0]
    results = []
    for use_incremental in (False, True):
        config = DMineConfig(
            k=3,
            d=2,
            sigma=1,
            num_workers=2,
            max_edges=3,
            max_extensions_per_rule=6,
            max_rules_per_round=10,
            backend=backend,
            executor_workers=2,
            use_incremental=use_incremental,
        )
        results.append(_dmine_fingerprint(dmine(graph, predicate, config)))
    assert results[0] == results[1]


def _eip_fingerprint(result):
    return (
        sorted(map(str, result.identified)),
        sorted(
            (rule.name, round(confidence, 9))
            for rule, confidence in result.rule_confidences.items()
        ),
        sorted(
            (rule.name, tuple(sorted(map(str, matches))))
            for rule, matches in result.rule_matches.items()
        ),
        result.candidates_examined,
    )


@pytest.mark.parametrize("seed", [0, 1])
def test_eip_equivalent_across_backends_and_incremental_modes(seed):
    """Match results (counts included) are identical in prefix-trie mode."""
    graph = synthetic_graph(150, 450, num_node_labels=6, num_edge_labels=4, seed=seed)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(graph, predicate, count=4, max_pattern_edges=3, d=2, seed=seed)

    fingerprints = set()
    for backend in BACKENDS:
        for use_incremental in (False, True):
            result = identify_entities(
                graph,
                rules,
                eta=0.5,
                num_workers=2,
                algorithm="match",
                backend=backend,
                executor_workers=2,
                use_incremental=use_incremental,
            )
            fingerprints.add(repr(_eip_fingerprint(result)))
    assert len(fingerprints) == 1
