"""Multi-tenant Σ serving: shared pool, warm admission, projections, sessions.

Covers the cross-rule-set sharing layer end to end: canonical-key
deduplication in :class:`~repro.matching.SharedPatternPool`, dynamic
Σ admission/retirement on a live :class:`~repro.stream.StreamingIdentifier`,
per-tenant projections of one shared core
(:class:`~repro.stream.MultiTenantIdentifier` — gated byte-identical to
independent runs by :func:`repro.testing.multi_tenant_check`), ownership
pinning in :class:`~repro.matching.MatchStore`, and the session-level
fan-out of :class:`repro.api.SharedSessionCore`.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.exceptions import ReproError, StreamError
from repro.identification.eip import EIPConfig, identify_entities
from repro.matching import (
    DeltaMatcher,
    MatchStore,
    SharedPatternPool,
    VF2Matcher,
    rule_key,
)
from repro.pattern.gpar import GPAR
from repro.pattern.pattern import Pattern
from repro.stream import (
    MultiTenantIdentifier,
    StreamingIdentifier,
    random_update_batch,
)
from repro.testing import eip_fingerprint, multi_tenant_check


def _workload(seed=3, count=8):
    graph = synthetic_graph(60, 200, num_node_labels=4, num_edge_labels=3, seed=seed)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(
        graph, predicate, count=count, max_pattern_edges=3, d=2, seed=seed
    )
    return graph, rules


def _config(**overrides):
    defaults = dict(eta=0.1, num_workers=2, seed=3)
    defaults.update(overrides)
    return EIPConfig(**defaults)


class TestSharedPatternPool:
    def test_overlapping_slices_share_canonical_keys(self):
        _graph, rules = _workload()
        pool = SharedPatternPool()
        first = pool.register("t1", tuple(rules[:5]))
        assert len(first.novel) == 5 and not first.shared
        second = pool.register("t2", tuple(rules[2:7]))
        # rules 2..4 are already resident under t1's keys
        assert set(second.shared) == set(rules[2:5])
        assert set(second.novel) == set(rules[5:7])
        assert second.shared_prefix_hits > 0
        for rule in rules[2:5]:
            assert pool.representative(rule_key(rule)) in rules
            assert pool.owners_of(rule) == frozenset({"t1", "t2"})

    def test_release_returns_last_owner_representatives(self):
        _graph, rules = _workload()
        pool = SharedPatternPool()
        pool.register("t1", tuple(rules[:5]))
        pool.register("t2", tuple(rules[2:7]))
        retired = pool.release("t1")
        # rules 0..1 lost their only owner; 2..4 survive under t2
        assert set(retired) == set(rules[:2])
        assert pool.owners_of(rules[2]) == frozenset({"t2"})
        retired = pool.release("t2")
        assert set(retired) == set(rules[2:7])
        assert len(pool) == 0

    def test_duplicate_tenant_and_empty_sigma_are_rejected(self):
        _graph, rules = _workload()
        pool = SharedPatternPool()
        pool.register("t1", tuple(rules[:2]))
        with pytest.raises(ReproError):
            pool.register("t1", tuple(rules[:2]))
        with pytest.raises(ReproError):
            pool.register("t2", ())


class TestMatchStoreOwnership:
    def _materialized(self, seed=1):
        graph = synthetic_graph(80, 240, num_node_labels=4, num_edge_labels=3, seed=seed)
        predicate = most_frequent_predicates(graph, top=1)[0]
        rules = generate_gpars(graph, predicate, count=2, max_pattern_edges=2, seed=seed)
        store = MatchStore(graph)
        delta_matcher = DeltaMatcher(graph, VF2Matcher(), store)
        patterns = []
        for rule in rules:
            pattern = rule.pr_pattern()
            if pattern in patterns:
                continue
            candidates = sorted(graph.nodes_with_label(pattern.label(pattern.x)), key=str)
            delta_matcher.materialize(pattern, candidates)
            patterns.append(pattern)
        return store, patterns

    def test_acquire_pins_through_retain(self):
        store, patterns = self._materialized()
        pinned = patterns[0]
        store.acquire(pinned, "tenant-a")
        dropped = store.retain([])  # a round prune that keeps nothing
        assert dropped == len(patterns) - 1
        assert store.get(pinned) is not None
        assert store.owners_of(pinned) == frozenset({"tenant-a"})

    def test_close_one_tenant_keeps_the_other(self):
        # The regression the refcount exists for: two tenants pin the same
        # entry; the first tenant's teardown must not evict it.
        store, patterns = self._materialized()
        shared = patterns[0]
        store.acquire(shared, "tenant-a")
        store.acquire(shared, "tenant-b")
        assert store.release("tenant-a") == 0
        assert store.get(shared) is not None
        assert store.owners_of(shared) == frozenset({"tenant-b"})
        assert store.release("tenant-b") == 1
        assert store.get(shared) is None


class TestStreamingAdmission:
    def test_admit_then_tick_then_retire_stay_exact(self):
        graph, rules = _workload()
        initial, additions = tuple(rules[:3]), tuple(rules[3:6])
        config = _config()
        with StreamingIdentifier(graph, list(initial), config=config) as identifier:
            report = identifier.admit_rules(additions)
            assert set(report.admitted) == set(additions)
            union = initial + additions

            def fresh(sigma):
                return identify_entities(
                    graph.copy(), list(sigma), eta=config.eta,
                    num_workers=config.num_workers, seed=config.seed,
                )

            assert eip_fingerprint(identifier.result) == eip_fingerprint(fresh(union))
            identifier.apply(random_update_batch(graph, size=6, seed=11))
            assert eip_fingerprint(identifier.result) == eip_fingerprint(fresh(union))
            retired = identifier.retire_rules(additions)
            assert set(retired) == set(additions)
            assert eip_fingerprint(identifier.result) == eip_fingerprint(fresh(initial))

    def test_admitting_a_wider_rule_is_rejected(self):
        graph, rules = _workload()
        predicate = most_frequent_predicates(graph, top=1)[0]
        x_label = predicate.label(predicate.x)
        edge_label = predicate.edges()[0].label
        narrow = GPAR(
            Pattern(
                nodes={"x": x_label, "y": predicate.label(predicate.y), "v1": x_label},
                edges=[("x", "v1", edge_label), ("x", "y", edge_label)],
                x="x",
                y="y",
            ),
            consequent_label=edge_label,
            validate=False,
        )
        wide = GPAR(
            Pattern(
                nodes={
                    "x": x_label,
                    "y": predicate.label(predicate.y),
                    "v1": x_label,
                    "v2": x_label,
                    "v3": x_label,
                },
                edges=[
                    ("x", "v1", edge_label),
                    ("v1", "v2", edge_label),
                    ("v2", "v3", edge_label),
                    ("x", "y", edge_label),
                ],
                x="x",
                y="y",
            ),
            consequent_label=edge_label,
            validate=False,
        )
        with StreamingIdentifier(graph, [narrow], config=_config()) as identifier:
            with pytest.raises(StreamError, match="radius_floor"):
                identifier.admit_rules([wide])
            # radius_floor headroom makes the same admission legal
        with StreamingIdentifier(
            graph, [narrow], config=_config(), radius_floor=3
        ) as identifier:
            identifier.admit_rules([wide])
            assert wide in identifier.rules

    def test_retiring_the_whole_sigma_is_rejected(self):
        graph, rules = _workload()
        with StreamingIdentifier(graph, list(rules[:2]), config=_config()) as identifier:
            with pytest.raises(StreamError):
                identifier.retire_rules(rules[:2])


class TestMultiTenantIdentifier:
    def test_warm_admission_pays_only_the_novel_suffix(self):
        graph, rules = _workload()
        with MultiTenantIdentifier(graph.copy(), config=_config()) as multi:
            first = multi.admit("t1", tuple(rules[:5]))
            assert first.cold_start and first.novel_rules == 5
            assert first.backfill_centers > 0
            second = multi.admit("t2", tuple(rules[2:7]))
            assert not second.cold_start
            assert second.shared_rules == 3 and second.novel_rules == 2
            third = multi.admit("t3", tuple(rules[2:5]))  # fully resident
            assert third.novel_rules == 0 and third.backfill_centers == 0
            assert len(multi.union_rules) == 7

    def test_projections_match_independent_runs_under_churn(self):
        graph, rules = _workload()
        tenants = {"t1": rules[:5], "t2": rules[2:7], "t3": rules[4:8]}
        batches = [
            random_update_batch(graph.copy(), size=6, seed=100 + i) for i in range(2)
        ]
        divergences = multi_tenant_check(
            graph,
            tenants,
            batches,
            eta=0.1,
            num_workers=2,
            seed=3,
            backends=("sequential", "threads"),
            columnar_modes=(True, False),
        )
        assert divergences == []

    def test_evict_keeps_remaining_tenants_exact(self):
        graph, rules = _workload()
        with MultiTenantIdentifier(graph.copy(), config=_config()) as multi:
            multi.admit("t1", tuple(rules[:5]))
            multi.admit("t2", tuple(rules[2:7]))
            multi.apply(random_update_batch(multi.graph, size=6, seed=7))
            multi.evict("t1")
            assert multi.tenants == ("t2",)
            assert eip_fingerprint(multi.result_for("t2")) == eip_fingerprint(
                multi.recompute_for("t2")
            )
            with pytest.raises(StreamError):
                multi.result_for("t1")

    def test_lifecycle_guards(self):
        graph, rules = _workload()
        multi = MultiTenantIdentifier(graph.copy(), config=_config())
        with pytest.raises(StreamError):
            multi.apply(random_update_batch(graph.copy(), size=4, seed=1))
        multi.admit("t1", tuple(rules[:3]))
        with pytest.raises(ReproError):
            multi.admit("t1", tuple(rules[:3]))  # duplicate tenant
        multi.evict("t1")
        assert multi._core is None  # last eviction closes the core
        multi.close()
        with pytest.raises(StreamError):
            multi.admit("t2", tuple(rules[:3]))


class TestSharedSessionCore:
    def test_tick_fans_out_and_close_one_keeps_one(self):
        graph, rules = _workload()
        config = _config()
        with api.open_shared_core(graph.copy(), config=config) as core:
            alpha = core.open_session("alpha", rules[:5])
            beta = core.open_session("beta", rules[2:7])
            assert alpha.admission.cold_start
            assert not beta.admission.cold_start and beta.admission.shared_rules == 3
            baseline = beta.graph_version
            batch = random_update_batch(core.graph, size=6, seed=5)
            _report, delta = alpha.apply(batch)
            assert delta.version == alpha.graph_version
            # the sibling advanced in the same tick and got its own delta
            assert beta.graph_version == alpha.graph_version
            assert [d.version for d in beta.deltas(baseline)] == [beta.graph_version]
            for session in (alpha, beta):
                assert eip_fingerprint(session.result) == eip_fingerprint(
                    session.recompute()
                )
            alpha.close()
            assert core.tenants == ("beta",)
            assert eip_fingerprint(beta.result) == eip_fingerprint(beta.recompute())

    def test_shared_sessions_reject_checkpointing(self, tmp_path):
        graph, rules = _workload()
        with api.open_shared_core(graph.copy(), config=_config()) as core:
            session = core.open_session("alpha", rules[:3])
            with pytest.raises(StreamError):
                session.save_state(tmp_path / "state.bin")
