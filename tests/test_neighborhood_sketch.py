"""Tests for bounded BFS, d-neighbourhoods and k-hop sketches."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph import (
    Graph,
    ball,
    bfs_distances,
    build_sketch,
    d_neighborhood,
    eccentricity,
    sketch_dominates,
    sketch_score,
)
from repro.graph.sketch import build_sketch_index


@pytest.fixture
def chain() -> Graph:
    """a -> b -> c -> d plus a side branch b -> e."""
    graph = Graph(name="chain")
    for node, label in (("a", "L"), ("b", "L"), ("c", "M"), ("d", "M"), ("e", "N")):
        graph.add_node(node, label)
    graph.add_edge("a", "b", "e1")
    graph.add_edge("b", "c", "e1")
    graph.add_edge("c", "d", "e1")
    graph.add_edge("b", "e", "e2")
    return graph


class TestBfs:
    def test_distances_undirected(self, chain):
        distances = bfs_distances(chain, "a")
        assert distances == {"a": 0, "b": 1, "c": 2, "e": 2, "d": 3}

    def test_distances_directed(self, chain):
        assert bfs_distances(chain, "c", directed=True) == {"c": 0, "d": 1}

    def test_radius_bound(self, chain):
        assert set(bfs_distances(chain, "a", radius=1)) == {"a", "b"}

    def test_unknown_source(self, chain):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(chain, "zzz")

    def test_ball_includes_center(self, chain):
        assert ball(chain, "a", 0) == {"a"}
        assert ball(chain, "a", 2) == {"a", "b", "c", "e"}

    def test_ball_negative_radius(self, chain):
        with pytest.raises(ValueError):
            ball(chain, "a", -1)

    def test_eccentricity(self, chain):
        assert eccentricity(chain, "a") == 3
        assert eccentricity(chain, "b") == 2


class TestDNeighborhood:
    def test_induced_ball(self, chain):
        sub = d_neighborhood(chain, "b", 1)
        assert set(sub.nodes()) == {"a", "b", "c", "e"}
        assert sub.has_edge("a", "b", "e1")
        assert not sub.has_node("d")

    def test_zero_radius(self, chain):
        sub = d_neighborhood(chain, "b", 0)
        assert set(sub.nodes()) == {"b"}
        assert sub.num_edges == 0

    def test_locality_property_for_paper_graph(self, g1):
        """Every node within radius d of the centre appears in Gd."""
        sub = d_neighborhood(g1, "cust1", 2)
        for node in ball(g1, "cust1", 2):
            assert sub.has_node(node)


class TestSketches:
    def test_sketch_distributions(self, chain):
        sketch = build_sketch(chain, "a", 2)
        assert sketch.distribution_at(1) == {"L": 1}
        assert sketch.distribution_at(2) == {"M": 1, "N": 1}
        assert sketch.distribution_at(5) == {}
        assert sketch.total_count() == 3

    def test_sketch_requires_positive_hops(self, chain):
        with pytest.raises(ValueError):
            build_sketch(chain, "a", 0)
        sketch = build_sketch(chain, "a", 1)
        with pytest.raises(ValueError):
            sketch.distribution_at(0)

    def test_dominates_reflexive(self, chain):
        sketch = build_sketch(chain, "a", 2)
        assert sketch_dominates(sketch, sketch)

    def test_dominates_rejects_missing_labels(self, chain):
        rich = build_sketch(chain, "b", 2)
        poor = build_sketch(chain, "d", 2)
        assert sketch_dominates(rich, poor) or rich.total_count() >= poor.total_count()
        assert not sketch_dominates(poor, rich)

    def test_cumulative_comparison(self):
        """A candidate with the required label one hop *closer* still dominates."""
        near = Graph()
        near.add_node("x", "cust")
        near.add_node("r", "restaurant")
        near.add_edge("x", "r", "visit")
        far = Graph()
        far.add_node("x", "cust")
        far.add_node("m", "cust")
        far.add_node("r", "restaurant")
        far.add_edge("x", "m", "friend")
        far.add_edge("m", "r", "visit")
        candidate = build_sketch(near, "x", 2)
        required = build_sketch(far, "x", 2)
        # The requirement has a restaurant at hop 2; the candidate has it at
        # hop 1 but lacks the hop-1 cust, so domination must fail only due to
        # the missing cust, not the restaurant's hop position.
        assert not sketch_dominates(candidate, required)
        assert sketch_dominates(required, required)

    def test_score_is_surplus(self, chain):
        rich = build_sketch(chain, "b", 2)
        poor = build_sketch(chain, "e", 2)
        assert sketch_score(rich, poor) > 0
        assert sketch_score(poor, poor) == 0

    def test_sketch_index(self, chain):
        index = build_sketch_index(chain, 2, nodes=["a", "b"])
        assert set(index) == {"a", "b"}
        assert index["a"].node == "a"
