"""Property-based tests (hypothesis) for the core invariants.

Covered invariants:

* graph bookkeeping (label index, degree sums, size) under random edits;
* d-neighbourhood locality: matching inside ``Gd(vx)`` agrees with matching
  in the full graph for patterns of radius ≤ d (the data-locality property
  both DMine and Match rely on);
* anti-monotonicity of topological support under pattern extension;
* matcher agreement: the guided matcher equals the VF2 matcher on random
  graphs and patterns;
* Jaccard distance is a bounded semi-metric;
* partitions always preserve the d-ball of every owned centre;
* EIP parallel/sequential agreement on random rule sets.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.graph import Graph, ball, d_neighborhood
from repro.matching import GuidedMatcher, VF2Matcher
from repro.metrics import jaccard_distance, support
from repro.metrics.support import rule_support
from repro.partition import partition_graph
from repro.pattern import GPAR, Pattern, PatternEdge
from repro.pattern.radius import is_connected, pattern_radius

NODE_LABELS = ["person", "city", "shop", "item"]
EDGE_LABELS = ["knows", "lives", "buys", "sells"]


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def random_graphs(draw, max_nodes: int = 14, max_extra_edges: int = 25) -> Graph:
    """Small random labelled directed graphs."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = Graph(name=f"random{seed}")
    for index in range(num_nodes):
        graph.add_node(f"n{index}", rng.choice(NODE_LABELS))
    num_edges = draw(st.integers(min_value=1, max_value=max_extra_edges))
    for _ in range(num_edges):
        source = f"n{rng.randrange(num_nodes)}"
        target = f"n{rng.randrange(num_nodes)}"
        if source != target:
            graph.add_edge(source, target, rng.choice(EDGE_LABELS))
    return graph


def _pattern_from_graph(graph: Graph, rng: random.Random, max_edges: int = 3) -> Pattern | None:
    """Lift a small connected subgraph of *graph* into a pattern."""
    anchors = [node for node in graph.nodes() if graph.degree(node) > 0]
    if not anchors:
        return None
    anchor = rng.choice(sorted(anchors, key=str))
    node_map = {anchor: "x"}
    nodes = {"x": graph.node_label(anchor)}
    edges: list[PatternEdge] = []
    frontier = [anchor]
    for _ in range(rng.randint(1, max_edges)):
        base = rng.choice(frontier)
        incident = list(graph.out_edges(base)) + list(graph.in_edges(base))
        if not incident:
            continue
        edge = rng.choice(incident)
        other = edge.target if edge.source == base else edge.source
        if other not in node_map:
            node_map[other] = f"p{len(node_map)}"
            nodes[node_map[other]] = graph.node_label(other)
            frontier.append(other)
        edges.append(PatternEdge(node_map[edge.source], node_map[edge.target], edge.label))
    if not edges:
        return None
    return Pattern(nodes=nodes, edges=edges, x="x")


@st.composite
def graphs_with_patterns(draw) -> tuple[Graph, Pattern]:
    graph = draw(random_graphs())
    seed = draw(st.integers(min_value=0, max_value=10_000))
    pattern = _pattern_from_graph(graph, random.Random(seed))
    if pattern is None:
        # Fall back to a trivially satisfiable single-node pattern.
        some_node = next(iter(graph.nodes()))
        pattern = Pattern(nodes={"x": graph.node_label(some_node)}, edges=[], x="x")
    return graph, pattern


# ----------------------------------------------------------------------
# graph invariants
# ----------------------------------------------------------------------
class TestGraphInvariants:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_label_index_consistent(self, graph: Graph):
        for label in graph.node_labels():
            for node in graph.nodes_with_label(label):
                assert graph.node_label(node) == label
        assert sum(graph.node_label_counts().values()) == graph.num_nodes

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_degree_sums_equal_edge_count(self, graph: Graph):
        assert sum(graph.out_degree(node) for node in graph.nodes()) == graph.num_edges
        assert sum(graph.in_degree(node) for node in graph.nodes()) == graph.num_edges
        assert graph.size == graph.num_nodes + graph.num_edges

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_copy_roundtrip(self, graph: Graph):
        assert graph.copy().structure_equal(graph)

    @given(random_graphs(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_ball_is_monotone_in_radius(self, graph: Graph, radius: int):
        node = next(iter(graph.nodes()))
        assert ball(graph, node, radius) <= ball(graph, node, radius + 1)

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_induced_subgraph_edge_subset(self, graph: Graph):
        nodes = list(graph.nodes())[: max(1, graph.num_nodes // 2)]
        sub = graph.induced_subgraph(nodes)
        for edge in sub.edges():
            assert graph.has_edge(edge.source, edge.target, edge.label)


# ----------------------------------------------------------------------
# matching and support invariants
# ----------------------------------------------------------------------
class TestMatchingInvariants:
    @given(graphs_with_patterns())
    @settings(max_examples=30, deadline=None)
    def test_guided_agrees_with_vf2(self, graph_and_pattern):
        graph, pattern = graph_and_pattern
        assert GuidedMatcher().match_set(graph, pattern) == VF2Matcher().match_set(
            graph, pattern
        )

    @given(graphs_with_patterns())
    @settings(max_examples=30, deadline=None)
    def test_locality_of_matching(self, graph_and_pattern):
        """vx ∈ Q(x, G) iff vx ∈ Q(x, Gd(vx)) for d = r(Q, x)."""
        graph, pattern = graph_and_pattern
        if not is_connected(pattern):
            return
        radius = pattern_radius(pattern)
        matcher = VF2Matcher()
        global_matches = matcher.match_set(graph, pattern)
        for candidate in graph.nodes_with_label(pattern.label(pattern.x)):
            local = matcher.exists_match_at(
                d_neighborhood(graph, candidate, max(radius, 1)), pattern, candidate
            )
            assert local == (candidate in global_matches)

    @given(graphs_with_patterns())
    @settings(max_examples=30, deadline=None)
    def test_support_anti_monotonicity(self, graph_and_pattern):
        """Adding an edge to a pattern can only shrink its support."""
        graph, pattern = graph_and_pattern
        base_count, base_matches = support(pattern, graph)
        if not base_matches:
            return
        # Extend the pattern by one edge read off an actual match.
        matcher = VF2Matcher()
        anchor = sorted(base_matches, key=str)[0]
        mapping = matcher.find_match_at(graph, pattern.expanded(), anchor)
        assert mapping is not None
        image = {v: k for k, v in mapping.items()}
        for pattern_node, data_node in mapping.items():
            extended = None
            for edge in graph.out_edges(data_node):
                if edge.target not in image:
                    extended = pattern.with_edge(
                        pattern_node,
                        "fresh",
                        edge.label,
                        target_label=graph.node_label(edge.target),
                    )
                    break
            if extended is not None:
                extended_count, extended_matches = support(extended, graph)
                assert extended_count <= base_count
                assert extended_matches <= base_matches
                break

    @given(st.lists(st.integers(0, 30), max_size=12), st.lists(st.integers(0, 30), max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_jaccard_distance_properties(self, first, second):
        distance = jaccard_distance(first, second)
        assert 0.0 <= distance <= 1.0
        assert distance == jaccard_distance(second, first)
        assert jaccard_distance(first, first) == 0.0
        if set(first) and set(first) == set(second):
            assert distance == 0.0
        if set(first) and set(second) and not (set(first) & set(second)):
            assert distance == 1.0


# ----------------------------------------------------------------------
# partition invariants
# ----------------------------------------------------------------------
class TestPartitionInvariants:
    @given(random_graphs(), st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=2))
    @settings(max_examples=25, deadline=None)
    def test_partition_preserves_balls_and_ownership(self, graph: Graph, workers: int, d: int):
        centers = graph.nodes_with_label("person")
        fragments = partition_graph(graph, workers, centers=centers, d=d, seed=0)
        owned = [node for fragment in fragments for node in fragment.owned_centers]
        assert sorted(map(str, owned)) == sorted(map(str, centers))
        for fragment in fragments:
            for center in fragment.owned_centers:
                for node in ball(graph, center, d):
                    assert fragment.graph.has_node(node)


# ----------------------------------------------------------------------
# end-to-end EIP agreement on random workloads
# ----------------------------------------------------------------------
class TestEndToEndAgreement:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_parallel_eip_agrees_with_sequential(self, seed):
        from repro.datasets import generate_gpars, most_frequent_predicates, pokec_like
        from repro.identification import identify_entities, identify_sequential

        graph = pokec_like(num_users=60, num_communities=4, seed=seed % 7)
        predicates = [
            predicate
            for predicate in most_frequent_predicates(graph, top=10)
            if predicate.label(predicate.y) not in ("user", "city")
        ]
        predicate = predicates[seed % len(predicates)]
        try:
            rules = generate_gpars(
                graph, predicate, count=3, max_pattern_edges=3, d=2, seed=seed
            )
        except Exception:
            return  # some predicates admit too few distinct rules — not a failure
        reference = identify_sequential(graph, rules, eta=1.0)
        for algorithm in ("match", "matchc"):
            result = identify_entities(
                graph, rules, eta=1.0, num_workers=3, algorithm=algorithm
            )
            assert result.identified == reference.identified


class TestGPARInvariants:
    @given(graphs_with_patterns(), st.sampled_from(EDGE_LABELS))
    @settings(max_examples=25, deadline=None)
    def test_rule_support_bounded_by_antecedent_support(self, graph_and_pattern, q_label):
        graph, pattern = graph_and_pattern
        if pattern.num_edges == 0:
            return
        # Build a GPAR by designating some non-x node as y.
        others = [node for node in pattern.nodes() if node != pattern.x]
        if not others:
            return
        y = sorted(others, key=str)[0]
        antecedent = Pattern(
            nodes=dict(pattern.node_items()),
            edges=pattern.edges(),
            x=pattern.x,
            y=y,
        )
        if antecedent.has_edge(antecedent.x, y, q_label):
            return
        rule = GPAR(antecedent, consequent_label=q_label, validate=False)
        rule_count, rule_matches = rule_support(rule, graph)
        antecedent_count, antecedent_matches = support(antecedent, graph)
        assert rule_count <= antecedent_count
        assert rule_matches <= antecedent_matches
