"""Unit tests for patterns: construction, copies, derivation, equality."""

import pytest

from repro.exceptions import PatternError
from repro.pattern import Pattern, PatternBuilder, PatternEdge
from repro.pattern.radius import is_connected, nodes_at_hop, pattern_radius
from repro.pattern.subsumption import embeds, subsumes


@pytest.fixture
def q_like() -> Pattern:
    return Pattern(
        nodes={"x": "cust", "y": "restaurant"},
        edges=[("x", "y", "like")],
        x="x",
        y="y",
    )


@pytest.fixture
def q_copies() -> Pattern:
    return (
        PatternBuilder()
        .node("x", "cust")
        .node("fr", "French restaurant", copies=3)
        .node("y", "French restaurant")
        .edge("x", "fr", "like")
        .designate(x="x", y="y")
        .build()
    )


class TestConstruction:
    def test_basic_counts(self, q_like):
        assert q_like.num_nodes == 2
        assert q_like.num_edges == 1
        assert q_like.size == (2, 1)

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            Pattern(nodes={}, edges=[], x="x")

    def test_edge_with_unknown_endpoint(self):
        with pytest.raises(PatternError):
            Pattern(nodes={"x": "cust"}, edges=[("x", "y", "like")], x="x")

    def test_unknown_designated_node(self):
        with pytest.raises(PatternError):
            Pattern(nodes={"x": "cust"}, edges=[], x="zzz")
        with pytest.raises(PatternError):
            Pattern(nodes={"x": "cust"}, edges=[], x="x", y="zzz")

    def test_duplicate_edges_are_collapsed(self):
        pattern = Pattern(
            nodes={"x": "cust", "y": "r"},
            edges=[("x", "y", "like"), ("x", "y", "like")],
            x="x",
        )
        assert pattern.num_edges == 1

    def test_copy_count_validation(self):
        with pytest.raises(PatternError):
            Pattern(nodes={"x": "cust"}, edges=[], x="x", copies={"x": 2})
        with pytest.raises(PatternError):
            Pattern(nodes={"x": "cust"}, edges=[], x="x", copies={"x": 0})
        with pytest.raises(PatternError):
            Pattern(nodes={"x": "cust"}, edges=[], x="x", copies={"ghost": 2})

    def test_label_lookup(self, q_like):
        assert q_like.label("x") == "cust"
        with pytest.raises(PatternError):
            q_like.label("ghost")

    def test_has_node_and_edge(self, q_like):
        assert q_like.has_node("x")
        assert q_like.has_edge("x", "y", "like")
        assert not q_like.has_edge("y", "x", "like")

    def test_adjacency(self, q_like):
        assert [e.label for e in q_like.out_edges("x")] == ["like"]
        assert [e.label for e in q_like.in_edges("y")] == ["like"]
        assert q_like.neighbors("x") == {"y"}


class TestCopies:
    def test_copy_count_accessors(self, q_copies):
        assert q_copies.copy_count("fr") == 3
        assert q_copies.copy_count("x") == 1
        assert q_copies.copy_counts() == {"fr": 3}

    def test_expanded_materialises_siblings(self, q_copies):
        expanded = q_copies.expanded()
        assert expanded.num_nodes == q_copies.num_nodes + 2
        assert expanded.num_edges == 3  # like edge replicated to each copy
        labels = [expanded.label(node) for node in expanded.nodes()]
        assert labels.count("French restaurant") == 4

    def test_expanded_without_copies_is_identity(self, q_like):
        assert q_like.expanded() is q_like

    def test_expanded_is_cached(self, q_copies):
        assert q_copies.expanded() is q_copies.expanded()

    def test_expansion_preserves_designated_nodes(self, q_copies):
        expanded = q_copies.expanded()
        assert expanded.x == "x"
        assert expanded.y == "y"


class TestDerivation:
    def test_with_edge_new_node(self, q_like):
        bigger = q_like.with_edge("x", "c", "live_in", target_label="city")
        assert bigger.num_nodes == 3
        assert bigger.num_edges == 2
        # Original unchanged (immutability).
        assert q_like.num_edges == 1

    def test_with_edge_requires_label_for_new_node(self, q_like):
        with pytest.raises(PatternError):
            q_like.with_edge("x", "c", "live_in")

    def test_without_node(self, q_like):
        bigger = q_like.with_edge("x", "c", "live_in", target_label="city")
        smaller = bigger.without_node("c")
        assert smaller == q_like

    def test_without_designated_node_rejected(self, q_like):
        with pytest.raises(PatternError):
            q_like.without_node("x")

    def test_to_graph(self, q_copies):
        graph = q_copies.to_graph()
        assert graph.num_nodes == q_copies.expanded().num_nodes
        assert graph.count_nodes_with_label("French restaurant") == 4


class TestEquality:
    def test_equal_patterns(self, q_like):
        twin = Pattern(
            nodes={"x": "cust", "y": "restaurant"},
            edges=[PatternEdge("x", "y", "like")],
            x="x",
            y="y",
        )
        assert twin == q_like
        assert hash(twin) == hash(q_like)

    def test_unequal_on_designation(self, q_like):
        other = Pattern(
            nodes={"x": "cust", "y": "restaurant"},
            edges=[("x", "y", "like")],
            x="x",
        )
        assert other != q_like

    def test_not_equal_to_other_types(self, q_like):
        assert q_like != "pattern"

    def test_repr(self, q_like):
        assert "nodes=2" in repr(q_like)


class TestRadiusAndConnectivity:
    def test_radius_at_x(self, r1):
        assert pattern_radius(r1.pr_pattern()) == 1
        assert pattern_radius(r1.antecedent) == 2

    def test_radius_alternative_anchor(self, q_like):
        assert pattern_radius(q_like, "y") == 1

    def test_radius_unknown_anchor(self, q_like):
        with pytest.raises(PatternError):
            pattern_radius(q_like, "ghost")

    def test_radius_disconnected(self):
        pattern = Pattern(
            nodes={"x": "cust", "y": "r", "z": "r"},
            edges=[("x", "y", "like")],
            x="x",
        )
        with pytest.raises(PatternError):
            pattern_radius(pattern)
        assert not is_connected(pattern)

    def test_is_connected(self, q_like):
        assert is_connected(q_like)

    def test_nodes_at_hop(self, r1):
        assert nodes_at_hop(r1.antecedent, "x", 0) == {"x"}
        assert "x2" in nodes_at_hop(r1.antecedent, "x", 1)


class TestSubsumption:
    def test_subsumes_shared_ids(self, q_like):
        bigger = q_like.with_edge("x", "c", "live_in", target_label="city")
        assert subsumes(bigger, q_like)
        assert not subsumes(q_like, bigger)

    def test_subsumes_checks_labels(self, q_like):
        other = Pattern(nodes={"x": "city"}, edges=[], x="x")
        assert not subsumes(q_like, other)

    def test_subsumes_checks_copies(self, q_copies):
        fewer = Pattern(
            nodes=dict(q_copies.node_items()),
            edges=q_copies.edges(),
            x="x",
            y="y",
            copies={"fr": 2},
        )
        assert subsumes(q_copies, fewer)
        assert not subsumes(fewer, q_copies)

    def test_embeds_across_different_ids(self, q_like):
        renamed = Pattern(
            nodes={"a": "cust", "b": "restaurant"},
            edges=[("a", "b", "like")],
            x="a",
            y="b",
        )
        assert embeds(q_like, renamed)

    def test_embeds_fails_on_missing_structure(self, q_like):
        bigger = Pattern(
            nodes={"a": "cust", "b": "restaurant", "c": "city"},
            edges=[("a", "b", "like"), ("a", "c", "live_in")],
            x="a",
            y="b",
        )
        assert not embeds(q_like, bigger)
