"""Tests for utilities and the exception hierarchy."""

import random

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
    ReproError,
)
from repro.utils import (
    Stopwatch,
    ensure_rng,
    require_in_range,
    require_non_negative,
    require_positive,
    require_type,
)


class TestRng:
    def test_none_gives_fresh_rng(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_existing_rng_passthrough(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_invalid_types_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")
        with pytest.raises(TypeError):
            ensure_rng(True)


class TestStopwatch:
    def test_measures_elapsed(self):
        watch = Stopwatch()
        watch.start()
        elapsed = watch.stop()
        assert elapsed >= 0.0
        assert watch.total == pytest.approx(elapsed)

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_context_manager(self):
        watch = Stopwatch()
        with watch:
            pass
        assert watch.total >= 0.0
        assert not watch.running

    def test_running_flag(self):
        watch = Stopwatch().start()
        assert watch.running
        watch.stop()
        assert not watch.running


class TestValidation:
    def test_require_positive(self):
        require_positive(1, "x")
        with pytest.raises(ValueError):
            require_positive(0, "x")

    def test_require_non_negative(self):
        require_non_negative(0, "x")
        with pytest.raises(ValueError):
            require_non_negative(-1, "x")

    def test_require_in_range(self):
        require_in_range(0.5, "lam", 0.0, 1.0)
        with pytest.raises(ValueError):
            require_in_range(1.5, "lam", 0.0, 1.0)

    def test_require_type(self):
        require_type(3, "x", int)
        require_type("s", "x", (int, str))
        with pytest.raises(TypeError):
            require_type(3, "x", str)
        with pytest.raises(TypeError):
            require_type(3.0, "x", (int, str))


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        assert issubclass(GraphError, ReproError)
        assert issubclass(NodeNotFoundError, GraphError)
        assert issubclass(NodeNotFoundError, KeyError)
        assert issubclass(EdgeNotFoundError, KeyError)

    def test_messages_mention_offenders(self):
        assert "ghost" in str(NodeNotFoundError("ghost"))
        assert "like" in str(EdgeNotFoundError("a", "b", "like"))
