"""The :mod:`repro.api` entry layer: pagination, sessions, deltas, configs.

Covers the serving semantics the HTTP boundary builds on, without HTTP:

* ``EIPResult.pages`` — a deterministic ``(entity id, rule index)`` total
  order with stable opaque cursors;
* ``Session.answer`` — pagination pinned to one ``Graph.version`` snapshot
  even while update batches tick the session forward;
* ``Session.deltas`` — per-tick deltas equal to the set-difference of
  fresh recomputes across seeded random batches (the pattern of
  ``tests/test_stream_equivalence.py``);
* explicit config objects end-to-end, with the legacy
  ``StreamingIdentifier(**config_overrides)`` path warning once and the
  re-entrant ``apply()`` guard rejecting interleaved ticks.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import api
from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.exceptions import IdentificationError, StreamError
from repro.identification import EIPConfig, identify_entities
from repro.mining import DMineConfig
from repro.stream import StreamingIdentifier, random_update_batch

SEEDS = range(10)


def _workload(seed: int = 5, num_rules: int = 6):
    graph = synthetic_graph(
        num_nodes=60 + (seed % 5) * 15,
        num_edges=180 + (seed % 7) * 40,
        num_node_labels=4 + (seed % 3),
        num_edge_labels=3,
        seed=seed,
    )
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(graph, predicate, count=num_rules, seed=seed + 1)
    return graph, rules


class TestPages:
    def test_total_order_is_entity_then_rule_index(self):
        graph, rules = _workload()
        result = identify_entities(graph, rules, eta=0.1)
        entries = result.answer_entries()
        keys = [(str(entry.entity), entry.rule_index) for entry in entries]
        assert keys == sorted(keys)
        assert len(entries) == sum(
            len(result.rule_matches[rule]) for rule in result.accepted_rules
        )

    def test_pages_cover_everything_once_and_cursors_are_stable(self):
        graph, rules = _workload()
        result = identify_entities(graph, rules, eta=0.1)
        full = result.answer_entries()
        assert full, "workload must identify something for pagination to mean anything"
        collected = []
        cursor = None
        pages = 0
        while True:
            page = result.pages(cursor=cursor, limit=2)
            assert page.total == len(full)
            collected.extend(page.entries)
            pages += 1
            if page.next_cursor is None:
                break
            # A cursor is a resumption key, not an offset: re-requesting the
            # same page yields byte-identical entries.
            again = result.pages(cursor=cursor, limit=2)
            assert again.entries == page.entries
            cursor = page.next_cursor
        assert collected == full
        assert pages == (len(full) + 1) // 2

    def test_malformed_cursor_and_bad_limit(self):
        graph, rules = _workload()
        result = identify_entities(graph, rules, eta=0.1)
        with pytest.raises(IdentificationError):
            result.pages(cursor="not-base64!!")
        with pytest.raises(IdentificationError):
            result.pages(cursor="aGVsbG8=")  # valid b64, not a [entity, index] pair
        with pytest.raises(IdentificationError):
            result.pages(limit=0)

    def test_entries_serialize(self):
        graph, rules = _workload()
        result = identify_entities(graph, rules, eta=0.1)
        for entry in result.answer_entries():
            doc = entry.as_dict()
            assert set(doc) == {"entity", "rule_index", "rule", "confidence"}
            json.dumps(doc)


class TestFacades:
    def test_mine_and_identify_take_explicit_configs(self):
        graph, rules = _workload()
        predicate = most_frequent_predicates(graph, top=1)[0]
        mined = api.mine(graph, predicate, DMineConfig(k=2, sigma=2, max_edges=2))
        assert mined.num_rules_discovered >= 0
        result = api.identify(graph, rules, EIPConfig(eta=0.1), algorithm="matchc")
        baseline = identify_entities(graph, rules, eta=0.1, algorithm="matchc")
        assert result.identified == baseline.identified
        assert result.rule_confidences == baseline.rule_confidences

    def test_identify_rejects_unknown_algorithm(self):
        graph, rules = _workload()
        with pytest.raises(StreamError):
            api.identify(graph, rules, algorithm="nope")

    def test_parse_predicate(self):
        predicate = api.parse_predicate("user:like_book:self help")
        edge = predicate.edges()[0]
        assert predicate.label(predicate.x) == "user"
        assert edge.label == "like_book"
        assert predicate.label(predicate.y) == "self help"
        for bad in ("user:like_book", "a:b:c:d", "a::c"):
            with pytest.raises(ValueError):
                api.parse_predicate(bad)


class TestConfigDeprecation:
    def test_kwargs_warn_but_still_work(self):
        graph, rules = _workload()
        with pytest.warns(DeprecationWarning):
            identifier = StreamingIdentifier(graph, rules, eta=0.1, num_workers=2)
        try:
            assert identifier.config == EIPConfig(eta=0.1, num_workers=2)
        finally:
            identifier.close()

    def test_config_and_kwargs_together_is_an_error(self):
        graph, rules = _workload()
        with pytest.raises(StreamError, match="not both"):
            StreamingIdentifier(graph, rules, config=EIPConfig(), eta=0.1)

    def test_open_session_never_warns(self, recwarn):
        graph, rules = _workload()
        with api.open_session(graph, rules, config=EIPConfig(eta=0.1)):
            pass
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestApplyGuard:
    def test_second_concurrent_apply_is_rejected(self):
        graph, rules = _workload()
        with StreamingIdentifier(graph, rules, config=EIPConfig(eta=0.1)) as identifier:
            batch = random_update_batch(graph, size=4, seed=9)
            # Deterministically simulate an in-flight apply() on another
            # thread by holding its non-blocking guard.
            assert identifier._apply_guard.acquire(blocking=False)
            try:
                with pytest.raises(StreamError, match="already in progress"):
                    identifier.apply(batch)
            finally:
                identifier._apply_guard.release()
            # Released: the same batch applies fine.
            identifier.apply(batch)

    def test_session_serializes_writers_instead(self):
        graph, rules = _workload()
        with api.open_session(graph, rules, config=EIPConfig(eta=0.1)) as session:
            batches = [random_update_batch(graph, size=3, seed=50 + i) for i in range(2)]
            # Sampled against the same graph state, both batches stay valid
            # whichever order the threads win the write lock.
            errors: list[BaseException] = []

            def write(batch):
                try:
                    session.apply(batch)
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=write, args=(b,)) for b in batches]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert session.identifier.batches_applied == 2


class TestSessionSnapshots:
    def test_pagination_is_pinned_across_ticks(self):
        graph, rules = _workload()
        with api.open_session(graph, rules, config=EIPConfig(eta=0.1)) as session:
            first_page, version = session.answer(limit=1)
            assert version == session.graph_version
            baseline_entries = list(session.snapshot(version).result.answer_entries())
            # Tick the session forward a few times mid-pagination.
            for position in range(3):
                session.apply(random_update_batch(graph, size=5, seed=70 + position))
            assert session.graph_version > version
            # The open pagination keeps reading the pinned snapshot.
            collected = list(first_page.entries)
            cursor = first_page.next_cursor
            while cursor is not None:
                page, seen_version = session.answer(cursor=cursor, limit=1)
                assert seen_version == version
                collected.extend(page.entries)
                cursor = page.next_cursor
            assert collected == baseline_entries
            # A fresh pagination starts at the new head version.
            _page, head_version = session.answer()
            assert head_version == session.graph_version

    def test_history_eviction_raises_snapshot_expired(self):
        graph, rules = _workload()
        with api.open_session(
            graph, rules, config=EIPConfig(eta=0.1), history_limit=2
        ) as session:
            page, version = session.answer(limit=1)
            for position in range(3):
                session.apply(random_update_batch(graph, size=4, seed=90 + position))
            with pytest.raises(api.SnapshotExpired) as excinfo:
                session.snapshot(version)
            assert excinfo.value.requested_version == version
            if page.next_cursor is not None:
                with pytest.raises(api.SnapshotExpired):
                    session.answer(cursor=page.next_cursor, limit=1)
            with pytest.raises(api.SnapshotExpired):
                session.deltas(version)

    def test_wait_for_version(self):
        graph, rules = _workload()
        with api.open_session(graph, rules, config=EIPConfig(eta=0.1)) as session:
            version = session.graph_version
            assert session.wait_for_version(version, timeout=0.05) is False
            waiter_saw = []

            def wait():
                waiter_saw.append(session.wait_for_version(version, timeout=10))

            thread = threading.Thread(target=wait)
            thread.start()
            session.apply(random_update_batch(graph, size=3, seed=33))
            thread.join(timeout=10)
            assert waiter_saw == [True]


class TestDeltaEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_tick_deltas_equal_recompute_set_difference(self, seed):
        """Across K random batches, every tick's delta must equal the
        set-difference of fresh recomputes before/after the batch."""
        graph, rules = _workload(seed)
        config = EIPConfig(eta=0.1)
        mirror = graph.copy()
        with api.open_session(graph, rules, config=config) as session:
            fresh_before = api.identify(mirror, rules, config)
            assert session.result.identified == fresh_before.identified
            for position in range(3):
                batch = random_update_batch(graph, size=7, seed=seed * 100 + position)
                _report, delta = session.apply(batch)
                batch.apply(mirror)
                fresh_after = api.identify(mirror, rules, config)
                expected = api.diff_results(
                    fresh_before, fresh_after, delta.base_version, delta.version
                )
                assert delta.as_dict() == expected.as_dict()
                fresh_before = fresh_after
            # The retained feed replays the same story end to end.
            all_deltas = session.deltas(session.snapshot().version - 3)
            assert [d.version for d in all_deltas] == sorted(d.version for d in all_deltas)

    def test_deltas_since_returns_contiguous_feed(self):
        graph, rules = _workload()
        with api.open_session(graph, rules, config=EIPConfig(eta=0.1)) as session:
            start = session.graph_version
            applied_versions = []
            for position in range(3):
                _report, delta = session.apply(
                    random_update_batch(graph, size=4, seed=40 + position)
                )
                applied_versions.append(delta.version)
            feed = session.deltas(start)
            assert [d.version for d in feed] == applied_versions
            assert feed[0].base_version == start
            assert session.deltas(applied_versions[-1]) == []
