"""Tests for the paper's example graphs, generators and workloads."""

import pytest

from repro.datasets import (
    generate_gpars,
    googleplus_like,
    graph_g1,
    graph_g2,
    most_frequent_predicates,
    pokec_like,
    synthetic_graph,
)
from repro.exceptions import DatasetError
from repro.metrics import evaluate_rule, predicate_stats


class TestPaperGraphs:
    def test_g1_basic_shape(self, g1):
        assert g1.count_nodes_with_label("cust") == 6
        assert g1.count_nodes_with_label("city") == 2
        assert g1.count_nodes_with_label("French restaurant") == 9

    def test_g1_is_deterministic(self):
        assert graph_g1().structure_equal(graph_g1())

    def test_g2_basic_shape(self, g2):
        assert g2.count_nodes_with_label("acct") == 4
        assert g2.count_nodes_with_label("blog") == 7
        assert g2.count_nodes_with_label("keyword") == 2
        assert graph_g2().structure_equal(graph_g2())

    def test_example3_q1_matches(self, g1, r1):
        evaluation = evaluate_rule(g1, r1)
        assert evaluation.antecedent_matches == {"cust1", "cust2", "cust3", "cust5"}

    def test_example10_pr1_matches(self, g1, r1):
        evaluation = evaluate_rule(g1, r1)
        assert evaluation.rule_matches == {"cust1", "cust2", "cust3"}

    def test_example5_r4_with_k1(self, g2):
        from repro.datasets import rule_r4

        evaluation = evaluate_rule(g2, rule_r4(k=1))
        assert evaluation.supp_r >= 3

    def test_rule_radii(self, g1_rules, r4):
        for rule in g1_rules:
            assert rule.radius <= 2
        # R4 reaches the fake-peer's posted blog via x', three hops from x.
        assert r4.radius == 3


class TestSyntheticGenerator:
    def test_requested_size(self):
        graph = synthetic_graph(200, 500, seed=1)
        assert graph.num_nodes == 200
        assert graph.num_edges == 500

    def test_deterministic_with_seed(self):
        assert synthetic_graph(100, 200, seed=5).structure_equal(
            synthetic_graph(100, 200, seed=5)
        )

    def test_different_seeds_differ(self):
        assert not synthetic_graph(100, 200, seed=1).structure_equal(
            synthetic_graph(100, 200, seed=2)
        )

    def test_label_alphabets(self):
        graph = synthetic_graph(100, 300, num_node_labels=5, num_edge_labels=3, seed=0)
        assert len(graph.node_labels()) <= 5
        assert len(graph.edge_labels()) <= 3

    def test_no_self_loops_or_duplicates(self):
        graph = synthetic_graph(50, 150, seed=2)
        seen = set()
        for edge in graph.edges():
            assert edge.source != edge.target
            key = (edge.source, edge.target, edge.label)
            assert key not in seen
            seen.add(key)

    def test_uniform_variant(self):
        graph = synthetic_graph(50, 100, preferential=False, seed=3)
        assert graph.num_edges == 100

    def test_invalid_requests(self):
        with pytest.raises(DatasetError):
            synthetic_graph(0, 10)
        with pytest.raises(DatasetError):
            synthetic_graph(10, -1)
        with pytest.raises(DatasetError):
            synthetic_graph(3, 1000, num_edge_labels=1)


class TestSocialGenerators:
    def test_pokec_like_shape(self, small_pokec):
        assert small_pokec.count_nodes_with_label("user") == 120
        assert "follow" in small_pokec.edge_labels()
        assert "like_book" in small_pokec.edge_labels()

    def test_pokec_deterministic(self):
        assert pokec_like(80, seed=4).structure_equal(pokec_like(80, seed=4))

    def test_pokec_planted_predicate_is_nondegenerate(self, small_pokec, pokec_book_predicate):
        stats = predicate_stats(small_pokec, pokec_book_predicate)
        assert stats.supp_q > 0
        assert stats.supp_q_bar > 0

    def test_googleplus_shape(self, small_googleplus):
        assert small_googleplus.count_nodes_with_label("user") == 120
        assert "major" in small_googleplus.edge_labels()

    def test_googleplus_planted_predicate(self, small_googleplus, googleplus_major_predicate):
        stats = predicate_stats(small_googleplus, googleplus_major_predicate)
        assert stats.supp_q > 0
        assert stats.supp_q_bar > 0

    def test_generators_reject_tiny_sizes(self):
        with pytest.raises(DatasetError):
            pokec_like(num_users=3)
        with pytest.raises(DatasetError):
            googleplus_like(num_users=3)
        with pytest.raises(DatasetError):
            pokec_like(num_users=50, num_communities=0)


class TestWorkloads:
    def test_most_frequent_predicates(self, small_pokec):
        predicates = most_frequent_predicates(small_pokec, top=5)
        assert len(predicates) == 5
        for predicate in predicates:
            assert predicate.num_edges == 1

    def test_generated_rules_are_valid_and_matchable(
        self, small_pokec, pokec_book_predicate
    ):
        rules = generate_gpars(
            small_pokec, pokec_book_predicate, count=6, max_pattern_edges=4, d=2, seed=1
        )
        assert len(rules) == 6
        assert len(set(rules)) == 6
        for rule in rules:
            assert rule.radius <= 2
            assert rule.antecedent.num_edges >= 1
            evaluation = evaluate_rule(small_pokec, rule)
            assert evaluation.supp_antecedent >= 1

    def test_generated_rules_share_predicate(self, small_pokec, pokec_book_predicate):
        rules = generate_gpars(small_pokec, pokec_book_predicate, count=4, seed=2)
        signatures = {(rule.x_label, rule.consequent_label, rule.y_label) for rule in rules}
        assert len(signatures) == 1

    def test_generation_is_deterministic(self, small_pokec, pokec_book_predicate):
        first = generate_gpars(small_pokec, pokec_book_predicate, count=4, seed=3)
        second = generate_gpars(small_pokec, pokec_book_predicate, count=4, seed=3)
        assert first == second

    def test_invalid_requests(self, small_pokec, pokec_book_predicate):
        with pytest.raises(DatasetError):
            generate_gpars(small_pokec, pokec_book_predicate, count=0)
        from repro.pattern import Pattern, PatternEdge

        impossible = Pattern(
            nodes={"x": "user", "y": "spaceship"},
            edges=[PatternEdge("x", "y", "pilots")],
            x="x",
            y="y",
        )
        with pytest.raises(DatasetError):
            generate_gpars(small_pokec, impossible, count=2)
