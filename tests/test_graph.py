"""Unit tests for the property-graph substrate."""

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph import Graph, GraphBuilder


@pytest.fixture
def toy() -> Graph:
    graph = Graph(name="toy")
    graph.add_node("a", "cust")
    graph.add_node("b", "cust")
    graph.add_node("r", "restaurant")
    graph.add_edge("a", "b", "friend")
    graph.add_edge("b", "a", "friend")
    graph.add_edge("a", "r", "visit")
    graph.add_edge("a", "r", "like")
    return graph


class TestNodes:
    def test_add_and_count(self, toy):
        assert toy.num_nodes == 3
        assert len(toy) == 3
        assert set(toy.nodes()) == {"a", "b", "r"}

    def test_labels(self, toy):
        assert toy.node_label("a") == "cust"
        assert toy.node_label("r") == "restaurant"

    def test_contains(self, toy):
        assert "a" in toy
        assert "zzz" not in toy
        assert toy.has_node("b")

    def test_readd_same_label_is_idempotent(self, toy):
        toy.add_node("a", "cust")
        assert toy.num_nodes == 3

    def test_readd_different_label_fails(self, toy):
        with pytest.raises(GraphError):
            toy.add_node("a", "restaurant")

    def test_unknown_node_label_raises(self, toy):
        with pytest.raises(NodeNotFoundError):
            toy.node_label("missing")

    def test_attrs_roundtrip(self):
        graph = Graph()
        graph.add_node("k", "keyword", {"text": "claim a prize"})
        assert graph.node_attrs("k") == {"text": "claim a prize"}
        assert graph.node_attrs("k") is not None

    def test_attrs_default_empty(self, toy):
        assert toy.node_attrs("a") == {}

    def test_attrs_unknown_node(self, toy):
        with pytest.raises(NodeNotFoundError):
            toy.node_attrs("nope")

    def test_node_items(self, toy):
        assert dict(toy.node_items())["a"] == "cust"

    def test_remove_node_removes_incident_edges(self, toy):
        toy_copy = toy.copy()
        toy_copy.remove_node("a")
        assert not toy_copy.has_node("a")
        assert toy_copy.num_edges == 0

    def test_remove_unknown_node(self, toy):
        with pytest.raises(NodeNotFoundError):
            toy.remove_node("ghost")


class TestEdges:
    def test_add_and_count(self, toy):
        assert toy.num_edges == 4
        assert toy.size == 3 + 4

    def test_duplicate_edge_not_added(self, toy):
        assert toy.add_edge("a", "b", "friend") is False
        assert toy.num_edges == 4

    def test_parallel_edges_different_labels(self, toy):
        assert toy.has_edge("a", "r", "visit")
        assert toy.has_edge("a", "r", "like")
        assert toy.edge_labels_between("a", "r") == {"visit", "like"}

    def test_has_edge_any_label(self, toy):
        assert toy.has_edge("a", "r")
        assert not toy.has_edge("r", "a")

    def test_edge_to_missing_node(self, toy):
        with pytest.raises(NodeNotFoundError):
            toy.add_edge("a", "ghost", "friend")
        with pytest.raises(NodeNotFoundError):
            toy.add_edge("ghost", "a", "friend")

    def test_edges_iteration(self, toy):
        edges = {(e.source, e.target, e.label) for e in toy.edges()}
        assert ("a", "b", "friend") in edges
        assert len(edges) == 4

    def test_remove_edge(self, toy):
        toy_copy = toy.copy()
        toy_copy.remove_edge("a", "r", "like")
        assert not toy_copy.has_edge("a", "r", "like")
        assert toy_copy.has_edge("a", "r", "visit")
        assert toy_copy.num_edges == 3

    def test_remove_missing_edge(self, toy):
        with pytest.raises(EdgeNotFoundError):
            toy.remove_edge("a", "r", "hates")

    def test_edge_label_counts(self, toy):
        counts = toy.edge_label_counts()
        assert counts["friend"] == 2
        assert counts["visit"] == 1

    def test_reversed_edge(self, toy):
        edge = next(iter(toy.out_edges("a")))
        assert edge.reversed().target == edge.source


class TestAdjacency:
    def test_out_neighbors(self, toy):
        assert toy.out_neighbors("a") == {"b", "r"}
        assert toy.out_neighbors("a", "visit") == {"r"}
        assert toy.out_neighbors("a", "unknown-label") == set()

    def test_in_neighbors(self, toy):
        assert toy.in_neighbors("r") == {"a"}
        assert toy.in_neighbors("a", "friend") == {"b"}

    def test_neighbors_undirected(self, toy):
        assert toy.neighbors("a") == {"b", "r"}
        assert toy.neighbors("r") == {"a"}

    def test_degrees(self, toy):
        assert toy.out_degree("a") == 3
        assert toy.in_degree("a") == 1
        assert toy.degree("a") == 4
        assert toy.out_degree("a", "friend") == 1

    def test_degree_of_missing_node(self, toy):
        with pytest.raises(NodeNotFoundError):
            toy.out_degree("missing")
        with pytest.raises(NodeNotFoundError):
            toy.in_neighbors("missing")

    def test_has_out_edge_labeled(self, toy):
        assert toy.has_out_edge_labeled("a", "visit")
        assert not toy.has_out_edge_labeled("b", "visit")

    def test_in_out_edges(self, toy):
        assert {e.label for e in toy.out_edges("a")} == {"friend", "visit", "like"}
        assert {e.source for e in toy.in_edges("r")} == {"a"}


class TestLabelIndex:
    def test_nodes_with_label(self, toy):
        assert toy.nodes_with_label("cust") == {"a", "b"}
        assert toy.nodes_with_label("missing") == set()

    def test_count_nodes_with_label(self, toy):
        assert toy.count_nodes_with_label("cust") == 2

    def test_label_sets(self, toy):
        assert toy.node_labels() == {"cust", "restaurant"}
        assert toy.edge_labels() == {"friend", "visit", "like"}

    def test_node_label_counts(self, toy):
        assert toy.node_label_counts() == {"cust": 2, "restaurant": 1}

    def test_label_index_updated_on_removal(self, toy):
        toy_copy = toy.copy()
        toy_copy.remove_node("r")
        assert toy_copy.nodes_with_label("restaurant") == set()
        assert "restaurant" not in toy_copy.node_labels()


class TestDerivedGraphs:
    def test_copy_is_structurally_equal(self, toy):
        clone = toy.copy()
        assert clone.structure_equal(toy)
        clone.add_node("z", "cust")
        assert not clone.structure_equal(toy)

    def test_copy_is_independent(self, toy):
        clone = toy.copy()
        clone.remove_edge("a", "b", "friend")
        assert toy.has_edge("a", "b", "friend")

    def test_induced_subgraph_keeps_internal_edges(self, toy):
        sub = toy.induced_subgraph({"a", "b"})
        assert sub.num_nodes == 2
        assert sub.has_edge("a", "b", "friend")
        assert sub.has_edge("b", "a", "friend")
        assert not sub.has_node("r")

    def test_induced_subgraph_missing_node(self, toy):
        with pytest.raises(NodeNotFoundError):
            toy.induced_subgraph({"a", "ghost"})

    def test_descendants(self, toy):
        assert toy.descendants("b") == {"a", "r"}
        assert toy.descendants("r") == set()

    def test_structure_equal_rejects_non_graph(self, toy):
        assert toy.structure_equal(object()) is False

    def test_repr_mentions_counts(self, toy):
        assert "nodes=3" in repr(toy)


class TestGraphBuilder:
    def test_fluent_build(self):
        graph = (
            GraphBuilder("b")
            .node("x", "cust")
            .edge("x", "y", "visit", target_label="restaurant")
            .build()
        )
        assert graph.num_nodes == 2
        assert graph.has_edge("x", "y", "visit")

    def test_undirected_edge(self):
        graph = (
            GraphBuilder()
            .node("a", "cust")
            .node("b", "cust")
            .undirected_edge("a", "b", "friend")
            .build()
        )
        assert graph.has_edge("a", "b", "friend")
        assert graph.has_edge("b", "a", "friend")

    def test_bulk_nodes_and_edges(self):
        graph = (
            GraphBuilder()
            .nodes([("a", "cust"), ("b", "cust")])
            .edges([("a", "b", "friend")])
            .build()
        )
        assert graph.num_edges == 1

    def test_builder_reset_after_build(self):
        builder = GraphBuilder("x").node("a", "cust")
        first = builder.build()
        second = builder.build()
        assert first.num_nodes == 1
        assert second.num_nodes == 0
