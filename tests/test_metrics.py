"""Tests for support, LCWA statistics, confidence and diversification.

These encode the paper's worked examples (Examples 5–8) as exact assertions.
"""

import math

import pytest

from repro.metrics import (
    DiversificationObjective,
    antecedent_support,
    bayes_factor_confidence,
    evaluate_rule,
    image_based_confidence,
    jaccard_distance,
    minimum_image_support,
    pca_confidence,
    predicate_stats,
    rule_difference,
    rule_support,
    support,
)
from repro.metrics.confidence import conventional_confidence, evaluate_rule_image_based
from repro.metrics.lcwa import predicate_stats_for_rule, q_bar_intersection
from repro.pattern import Pattern


class TestSupport:
    def test_example5_antecedent_support(self, g1, r1):
        count, matches = antecedent_support(r1, g1)
        assert count == 4
        assert matches == {"cust1", "cust2", "cust3", "cust5"}

    def test_example5_rule_support(self, g1, r1):
        count, matches = rule_support(r1, g1)
        assert count == 3
        assert matches == {"cust1", "cust2", "cust3"}

    def test_example5_r4_support(self, g2, r4):
        count, matches = rule_support(r4, g2)
        assert count == 3
        assert matches == {"acct1", "acct2", "acct3"}
        antecedent_count, _ = antecedent_support(r4, g2)
        assert antecedent_count == 3

    def test_support_candidate_restriction(self, g1, r1):
        count, matches = rule_support(r1, g1, candidates={"cust1", "cust5"})
        assert count == 1 and matches == {"cust1"}

    def test_anti_monotonicity_on_paper_rules(self, g1, r5, r7):
        """R7 extends R5, so supp(R7) <= supp(R5) (anti-monotonicity)."""
        assert rule_support(r7, g1)[0] <= rule_support(r5, g1)[0]

    def test_single_node_pattern_support(self, g1):
        pattern = Pattern(nodes={"x": "cust"}, edges=[], x="x")
        count, matches = support(pattern, g1)
        assert count == 6

    def test_minimum_image_support(self, g1, r1):
        image = minimum_image_support(r1.pr_pattern(), g1)
        # One city (New York) participates in every match, so the minimum
        # image is 1; it is never larger than the topological support.
        assert 1 <= image <= rule_support(r1, g1)[0]

    def test_minimum_image_support_no_matches(self, g1, r1):
        impossible = Pattern(
            nodes={"x": "spaceship"}, edges=[], x="x"
        )
        assert minimum_image_support(impossible, g1) == 0


class TestLCWA:
    def test_example8_predicate_stats(self, g1, visit_predicate):
        stats = predicate_stats(g1, visit_predicate)
        assert stats.supp_q == 5
        assert stats.supp_q_bar == 1
        assert stats.positives == frozenset({"cust1", "cust2", "cust3", "cust4", "cust6"})
        assert stats.negatives == frozenset({"cust5"})
        assert stats.unknown == frozenset()
        assert stats.normalizer == 5

    def test_example7_classification(self, g_ecuador, r2):
        stats = predicate_stats_for_rule(g_ecuador, r2)
        assert stats.classify("v1") == "positive"
        assert stats.classify("v2") == "negative"
        assert stats.classify("v3") == "unknown"
        with pytest.raises(KeyError):
            stats.classify("u1")  # fans do not carry the x label

    def test_num_candidates(self, g_ecuador, r2):
        stats = predicate_stats_for_rule(g_ecuador, r2)
        assert stats.num_candidates == 3

    def test_qbar_intersection(self, g1, r1):
        stats = predicate_stats_for_rule(g1, r1)
        _count, antecedent = antecedent_support(r1, g1)
        assert q_bar_intersection(stats.negatives, antecedent) == {"cust5"}

    def test_predicate_pattern_must_be_single_edge(self, g1, r1):
        with pytest.raises(ValueError):
            predicate_stats(g1, r1.antecedent)


class TestConfidenceFormulas:
    def test_bayes_factor_basic(self):
        assert bayes_factor_confidence(3, 1, 1, 5) == pytest.approx(0.6)

    def test_bayes_factor_trivial_cases(self):
        assert math.isinf(bayes_factor_confidence(3, 1, 0, 5))
        assert math.isinf(bayes_factor_confidence(3, 1, 1, 0))
        assert bayes_factor_confidence(0, 1, 1, 5) == 0.0

    def test_bayes_factor_rejects_negative(self):
        with pytest.raises(ValueError):
            bayes_factor_confidence(-1, 1, 1, 1)

    def test_pca_confidence(self):
        assert pca_confidence(3, 6) == pytest.approx(0.5)
        assert math.isinf(pca_confidence(3, 0))

    def test_image_based_confidence(self):
        assert image_based_confidence(2, 1, 1, 5) == pytest.approx(0.4)
        assert math.isinf(image_based_confidence(2, 1, 0, 5))

    def test_conventional_confidence(self):
        assert conventional_confidence(1, 3) == pytest.approx(1 / 3)
        assert conventional_confidence(0, 0) == 0.0


class TestRuleEvaluation:
    def test_example8_confidences(self, g1, r1, r7, r8):
        assert evaluate_rule(g1, r1).confidence == pytest.approx(0.6)
        assert evaluate_rule(g1, r7).confidence == pytest.approx(0.6)
        assert evaluate_rule(g1, r8).confidence == pytest.approx(0.2)

    def test_example7_bf_vs_conventional(self, g_ecuador, r2):
        evaluation = evaluate_rule(g_ecuador, r2)
        assert evaluation.confidence == pytest.approx(1.0)
        assert evaluation.conventional == pytest.approx(1 / 3)
        assert evaluation.supp_r == 1
        assert evaluation.supp_q == 1
        assert evaluation.supp_q_bar == 1
        assert evaluation.supp_q_qbar == 1

    def test_shared_stats_give_same_answer(self, g1, r7, visit_predicate):
        stats = predicate_stats(g1, visit_predicate)
        assert evaluate_rule(g1, r7, stats=stats).confidence == evaluate_rule(
            g1, r7
        ).confidence

    def test_rule_matches_subset_of_antecedent(self, g1, g1_rules):
        for rule in g1_rules:
            evaluation = evaluate_rule(g1, rule)
            assert evaluation.rule_matches <= evaluation.antecedent_matches

    def test_is_trivial_flag(self, g1, r1):
        assert not evaluate_rule(g1, r1).is_trivial

    def test_as_row_readable(self, g1, r1):
        row = evaluate_rule(g1, r1).as_row()
        assert "R1" in row and "conf=0.600" in row

    def test_image_based_evaluation(self, g1, r7):
        iconf = evaluate_rule_image_based(g1, r7)
        assert iconf >= 0.0


class TestDiversification:
    def test_jaccard_basics(self):
        assert jaccard_distance({1, 2}, {1, 2}) == 0.0
        assert jaccard_distance({1}, {2}) == 1.0
        assert jaccard_distance(set(), set()) == 0.0
        assert jaccard_distance({1, 2}, {2, 3}) == pytest.approx(1 - 1 / 3)

    def test_example8_diffs(self, g1, r1, r7, r8):
        matches = {rule.name: evaluate_rule(g1, rule).rule_matches for rule in (r1, r7, r8)}
        assert rule_difference(matches["R1"], matches["R7"]) == 0.0
        assert rule_difference(matches["R1"], matches["R8"]) == 1.0
        assert rule_difference(matches["R7"], matches["R8"]) == 1.0

    def test_example8_objective_value(self, g1, r7, r8, visit_predicate):
        stats = predicate_stats(g1, visit_predicate)
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=stats.normalizer)
        ev7 = evaluate_rule(g1, r7, stats=stats)
        ev8 = evaluate_rule(g1, r8, stats=stats)
        value = objective.total_from_matches(
            [ev7.confidence, ev8.confidence], [ev7.rule_matches, ev8.rule_matches]
        )
        assert value == pytest.approx(1.08)

    def test_pair_score_matches_total_for_k2(self, g1, r7, r8, visit_predicate):
        stats = predicate_stats(g1, visit_predicate)
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=stats.normalizer)
        ev7 = evaluate_rule(g1, r7, stats=stats)
        ev8 = evaluate_rule(g1, r8, stats=stats)
        diff = rule_difference(ev7.rule_matches, ev8.rule_matches)
        assert objective.pair_score(ev7.confidence, ev8.confidence, diff) == pytest.approx(1.08)

    def test_lambda_extremes(self):
        pure_conf = DiversificationObjective(lam=0.0, k=2, normalizer=10)
        pure_div = DiversificationObjective(lam=1.0, k=2, normalizer=10)
        assert pure_conf.pair_score(1.0, 1.0, 1.0) == pytest.approx(0.2)
        assert pure_div.pair_score(1.0, 1.0, 1.0) == pytest.approx(2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DiversificationObjective(lam=1.5, k=2, normalizer=1)
        with pytest.raises(ValueError):
            DiversificationObjective(lam=0.5, k=0, normalizer=1)

    def test_k1_has_no_diversity_term(self):
        objective = DiversificationObjective(lam=0.5, k=1, normalizer=5)
        assert objective.total([2.0], {}) == pytest.approx(0.5 * 2.0 / 5)

    def test_degenerate_normalizer_drops_confidence_term(self):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=0)
        assert objective.total_from_matches([1.0, 1.0], [{1}, {2}]) == pytest.approx(1.0)

    def test_infinite_confidences_clamped(self):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        assert objective.total_from_matches([math.inf, 1.0], [{1}, {2}]) < math.inf

    def test_upper_bound_contribution(self):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        assert objective.upper_bound_contribution(1.0, 1.0) == pytest.approx(
            objective.pair_score(1.0, 1.0, 1.0)
        )

    def test_mismatched_lengths_rejected(self):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        with pytest.raises(ValueError):
            objective.total_from_matches([1.0], [{1}, {2}])
