"""Unit tests for GPARs: validation, derived patterns, radii."""

import pytest

from repro.exceptions import InvalidGPARError
from repro.pattern import GPAR, Pattern, PatternBuilder


@pytest.fixture
def simple_antecedent() -> Pattern:
    return (
        PatternBuilder()
        .node("x", "cust")
        .node("f", "cust")
        .node("y", "restaurant")
        .undirected_edge("x", "f", "friend")
        .edge("f", "y", "visit")
        .designate(x="x", y="y")
        .build()
    )


class TestValidation:
    def test_valid_rule(self, simple_antecedent):
        rule = GPAR(simple_antecedent, consequent_label="visit", name="R")
        assert rule.consequent_label == "visit"
        assert rule.x == "x" and rule.y == "y"

    def test_missing_y_rejected(self):
        antecedent = Pattern(nodes={"x": "cust"}, edges=[], x="x")
        with pytest.raises(InvalidGPARError):
            GPAR(antecedent, consequent_label="visit")

    def test_empty_antecedent_rejected(self):
        antecedent = Pattern(nodes={"x": "cust", "y": "r"}, edges=[], x="x", y="y")
        with pytest.raises(InvalidGPARError):
            GPAR(antecedent, consequent_label="visit")

    def test_consequent_in_antecedent_rejected(self):
        antecedent = Pattern(
            nodes={"x": "cust", "y": "r"}, edges=[("x", "y", "visit")], x="x", y="y"
        )
        with pytest.raises(InvalidGPARError):
            GPAR(antecedent, consequent_label="visit")

    def test_disconnected_pr_rejected(self):
        antecedent = Pattern(
            nodes={"x": "cust", "y": "r", "island": "city", "island2": "city"},
            edges=[("island", "island2", "near")],
            x="x",
            y="y",
        )
        with pytest.raises(InvalidGPARError):
            GPAR(antecedent, consequent_label="visit")

    def test_validation_can_be_disabled(self):
        antecedent = Pattern(nodes={"x": "cust", "y": "r"}, edges=[], x="x", y="y")
        rule = GPAR(antecedent, consequent_label="visit", validate=False)
        assert rule.antecedent.num_edges == 0


class TestDerivedPatterns:
    def test_pr_adds_consequent_edge(self, simple_antecedent):
        rule = GPAR(simple_antecedent, consequent_label="visit")
        pr = rule.pr_pattern()
        assert pr.num_edges == simple_antecedent.num_edges + 1
        assert pr.has_edge("x", "y", "visit")
        assert rule.pr_pattern() is pr  # cached

    def test_q_pattern_single_edge(self, simple_antecedent):
        rule = GPAR(simple_antecedent, consequent_label="visit")
        q = rule.q_pattern()
        assert q.num_nodes == 2
        assert q.num_edges == 1
        assert q.label(q.x) == "cust"
        assert q.label(q.y) == "restaurant"

    def test_labels(self, simple_antecedent):
        rule = GPAR(simple_antecedent, consequent_label="visit")
        assert rule.x_label == "cust"
        assert rule.y_label == "restaurant"

    def test_value_binding_preserved(self, r4):
        q = r4.q_pattern()
        assert q.label(q.y) == "fake"

    def test_with_antecedent(self, simple_antecedent):
        rule = GPAR(simple_antecedent, consequent_label="visit", name="orig")
        extended = rule.with_antecedent(
            simple_antecedent.with_edge("x", "c", "live_in", target_label="city"),
            name="ext",
        )
        assert extended.consequent_label == "visit"
        assert extended.antecedent.num_edges == simple_antecedent.num_edges + 1
        assert extended.name == "ext"


class TestRadii:
    def test_pr_radius(self, r1):
        assert r1.radius == 1

    def test_verification_radius_exceeds_pr_radius(self, r1):
        # y is two hops from x in the antecedent but one hop in PR.
        assert r1.verification_radius == 2

    def test_verification_radius_free_y(self, r5):
        # R5's antecedent leaves y unconnected; only the x-component counts.
        assert r5.verification_radius >= r5.radius

    def test_size(self, r1):
        nodes, edges = r1.size
        assert nodes == r1.pr_pattern().num_nodes
        assert edges == r1.pr_pattern().num_edges


class TestEqualityAndDescription:
    def test_structural_equality_ignores_name(self, simple_antecedent):
        rule_a = GPAR(simple_antecedent, consequent_label="visit", name="A")
        rule_b = GPAR(simple_antecedent, consequent_label="visit", name="B")
        assert rule_a == rule_b
        assert hash(rule_a) == hash(rule_b)

    def test_inequality_on_consequent(self, simple_antecedent):
        rule_a = GPAR(simple_antecedent, consequent_label="visit")
        rule_b = GPAR(simple_antecedent, consequent_label="like")
        assert rule_a != rule_b

    def test_not_equal_to_other_types(self, simple_antecedent):
        assert GPAR(simple_antecedent, consequent_label="visit") != 42

    def test_describe_mentions_edges(self, r1):
        text = r1.describe()
        assert "friend" in text
        assert "R1" in text
        assert "(x3)" in text  # the 3-copies French restaurant node

    def test_repr(self, r1):
        assert "R1" in repr(r1)
