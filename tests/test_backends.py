"""Backend equivalence and message picklability.

The contract behind ``--backend``: sequential, thread and process execution
produce *identical* mined rule sets and identical EIP matches, because all
cross-round state lives at the coordinator and worker functions are pure in
``(fragment, payload)``.  These tests pin that contract on the synthetic
dataset, and pin picklability of every type that crosses the process
boundary.
"""

from __future__ import annotations

import pickle

import pytest

from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.exceptions import ExecutorError, WorkerError
from repro.identification import identify_entities
from repro.mining import DMineConfig, dmine
from repro.parallel import (
    EvaluatePayload,
    ProcessPoolExecutorBackend,
    Proposal,
    ProposePayload,
    RuleFocus,
    RuleMessage,
    WorkerTask,
    make_executor,
)
from repro.identification.matchc import VerifyPayload, _FragmentReport
from repro.identification.eip import EIPConfig
from repro.identification.match import Match
from repro.mining.local_mine import seed_rule
from repro.partition import partition_graph

BACKENDS = ["sequential", "threads", "processes"]


@pytest.fixture(scope="module")
def synthetic():
    graph = synthetic_graph(350, 1050, num_node_labels=10, num_edge_labels=6, seed=7)
    predicate = most_frequent_predicates(graph, top=1)[0]
    return graph, predicate


def _rule_signature(result):
    """Backend-independent fingerprint of a DMine result."""
    return (
        sorted(str(rule._key()) for rule in result.all_rules),
        sorted(
            (str(mined.rule._key()), mined.support, round(mined.confidence, 9))
            for mined in result.top_k
        ),
        round(result.objective_value, 9),
        result.candidates_generated,
        result.rounds_executed,
    )


class TestDMineEquivalence:
    @pytest.fixture(scope="class")
    def reference(self, synthetic):
        graph, predicate = synthetic
        return _rule_signature(dmine(graph, predicate, self._config("sequential")))

    @staticmethod
    def _config(backend):
        return DMineConfig(
            k=4, d=2, sigma=2, num_workers=4, max_edges=2, backend=backend
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identical_rules_across_backends(self, synthetic, reference, backend):
        graph, predicate = synthetic
        result = dmine(graph, predicate, self._config(backend))
        assert _rule_signature(result) == reference

    def test_process_backend_records_timings(self, synthetic):
        graph, predicate = synthetic
        result = dmine(graph, predicate, self._config("processes"))
        assert result.timings.wall_time > 0
        assert result.timings.num_rounds > 0


class TestEIPEquivalence:
    @pytest.fixture(scope="class")
    def workload(self, synthetic):
        graph, predicate = synthetic
        rules = generate_gpars(graph, predicate, count=5, max_pattern_edges=3, d=2, seed=5)
        return graph, rules

    @pytest.mark.parametrize("algorithm", ["matchc", "match", "disvf2"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identical_matches_across_backends(self, workload, algorithm, backend):
        graph, rules = workload
        reference = identify_entities(
            graph, rules, eta=0.5, num_workers=3, algorithm=algorithm
        )
        result = identify_entities(
            graph, rules, eta=0.5, num_workers=3, algorithm=algorithm, backend=backend
        )
        assert result.identified == reference.identified
        assert result.rule_confidences == reference.rule_confidences
        assert result.accepted_rules == reference.accepted_rules
        assert result.candidates_examined == reference.candidates_examined


class TestMessagePickling:
    """Round-trip every type that crosses the process boundary."""

    def _roundtrip(self, value):
        clone = pickle.loads(pickle.dumps(value))
        assert type(clone) is type(value)
        return clone

    def test_rule_message(self, r1):
        message = RuleMessage(
            rule=r1,
            fragment_index=2,
            supp_r=3,
            extendable=True,
            rule_matches=frozenset({"a", "b"}),
            antecedent_matches=frozenset({"a", "b", "c"}),
            qbar_matches=frozenset({"d"}),
        )
        clone = self._roundtrip(message)
        assert clone == message
        assert clone.rule == r1
        assert clone.payload_size() == message.payload_size()

    def test_round_payloads(self, r1, visit_predicate):
        config = DMineConfig(num_workers=2)
        seed = seed_rule(visit_predicate)
        propose = ProposePayload(
            rules=(seed,),
            focus=(RuleFocus(centers=frozenset({"x1"})),),
            predicate=visit_predicate,
            config=config,
        )
        clone = self._roundtrip(propose)
        assert clone.rules[0] == seed
        assert clone.focus[0].centers == frozenset({"x1"})
        assert clone.config == config

        evaluate = EvaluatePayload(
            rules=(r1,), pools=(None,), predicate=visit_predicate, config=config
        )
        clone = self._roundtrip(evaluate)
        assert clone.rules[0] == r1
        assert clone.pools == (None,)

    def test_proposal_and_task(self, r1):
        proposal = self._roundtrip(Proposal(rule=r1, parent_index=3))
        assert proposal.rule == r1 and proposal.parent_index == 3
        task = self._roundtrip(WorkerTask(fn=seed_rule, fragment_id=1, payload="p"))
        assert task.fn is seed_rule and task.fragment_id == 1

    def test_verify_payload_and_report(self, r1):
        payload = VerifyPayload(
            solver_cls=Match,
            config=EIPConfig(num_workers=2),
            rules=(r1,),
            max_radius=2,
            predicate=r1.q_pattern(),
        )
        clone = self._roundtrip(payload)
        assert clone.solver_cls is Match
        assert clone.rules[0] == r1

        report = _FragmentReport(fragment_index=1, supp_q=2)
        report.rule_matches[r1] = {"a"}
        clone = self._roundtrip(report)
        assert clone.rule_matches[r1] == {"a"}

    def test_fragment(self, g1):
        fragments = partition_graph(g1, 2, centers=g1.nodes_with_label("cust"), d=1, seed=0)
        clone = self._roundtrip(fragments[0])
        assert clone.index == fragments[0].index
        assert clone.owned_centers == fragments[0].owned_centers
        assert clone.graph.num_nodes == fragments[0].graph.num_nodes
        assert sorted(map(str, clone.graph.nodes())) == sorted(
            map(str, fragments[0].graph.nodes())
        )


def _raise_in_worker(context, payload):
    raise RuntimeError("injected failure")


class TestProcessBackend:
    def test_worker_error_carries_fragment_id(self, g1):
        fragments = partition_graph(g1, 2, centers=g1.nodes_with_label("cust"), d=1, seed=0)
        backend = ProcessPoolExecutorBackend(max_workers=2)
        backend.start(fragments)
        try:
            with pytest.raises(WorkerError) as excinfo:
                backend.run([WorkerTask(_raise_in_worker, fragments[1].index, None)])
            assert excinfo.value.fragment_id == fragments[1].index
            assert "injected failure" in str(excinfo.value)
        finally:
            backend.shutdown()

    def test_run_before_start_is_an_error(self):
        backend = ProcessPoolExecutorBackend()
        with pytest.raises(ExecutorError):
            backend.run([WorkerTask(_raise_in_worker, 0, None)])

    def test_make_executor_rejects_unknown_backend(self):
        with pytest.raises(ExecutorError):
            make_executor("gpu")

    def test_pool_survives_many_rounds(self, g1):
        """The pool is persistent: repeated run() calls reuse warm workers."""
        fragments = partition_graph(g1, 2, centers=g1.nodes_with_label("cust"), d=1, seed=0)
        backend = ProcessPoolExecutorBackend(max_workers=2)
        backend.start(fragments)
        try:
            for _round in range(5):
                results, durations, _metrics = backend.run(
                    [WorkerTask(_fragment_size, f.index, None) for f in fragments]
                )
                assert results == [f.graph.num_nodes for f in fragments]
                assert all(duration >= 0 for duration in durations)
        finally:
            backend.shutdown()


def _fragment_size(context, payload):
    return context.fragment.graph.num_nodes
