"""Randomized equivalence: columnar matching == dict matching, always.

The resident :class:`repro.graph.columnar.ColumnarFragment` is a frozen
re-encoding of the fragment (interned label ids, CSR adjacency, a
precomputed profile matrix), so every probe must agree with the dict-backed
definitions byte for byte.  Three layers of evidence:

* a hypothesis suite drives random graphs through compile → random update
  batches → refresh (both the patch and the recompile policy) and checks
  label buckets, candidate filtering and dual simulation against the
  dict-path oracles after every step, on both the numpy and the pure-array
  backend;
* ~50 seeded random graph/pattern pairs run VF2, dual simulation and guided
  search with the columnar kernel on and off, requiring identical matches;
* full DMine / EIP pipelines run across all three execution backends ×
  columnar {on, off} × numpy {available, disabled}, requiring one single
  result fingerprint everywhere (the cross-backend gate the bench smoke
  also enforces).
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.graph import Graph
from repro.graph.columnar import ColumnarFragment, numpy_or_none
from repro.identification import identify_entities
from repro.matching import GuidedMatcher, SimulationMatcher, VF2Matcher
from repro.matching.candidates import degree_consistent
from repro.matching.simulation import maximum_dual_simulation
from repro.mining import DMineConfig, dmine
from repro.parallel.executor import BACKENDS
from repro.pattern import Pattern, PatternEdge
from repro.stream import random_update_batch

SEEDS = range(50)

NODE_LABELS = ["person", "city", "shop", "item"]
EDGE_LABELS = ["knows", "lives", "buys", "sells"]


@contextmanager
def numpy_disabled(disabled: bool = True):
    """Force the pure-``array`` code path for compiles inside the block.

    The probe re-resolves per compile, so flipping the environment variable
    is enough — no reimport needed.  (A plain context manager instead of
    monkeypatch: hypothesis forbids function-scoped fixtures under @given.)
    """
    if not disabled:
        yield
        return
    previous = os.environ.get("REPRO_NO_NUMPY")
    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_NO_NUMPY", None)
        else:
            os.environ["REPRO_NO_NUMPY"] = previous


#: numpy-mode legs worth running: the pure-array path always, the numpy
#: path whenever the interpreter has numpy importable.
NUMPY_MODES = [True, False] if numpy_or_none() is not None else [False]


# ----------------------------------------------------------------------
# hypothesis: compile -> random deltas -> refresh -> dict equality
# ----------------------------------------------------------------------
@st.composite
def random_graphs(draw, max_nodes: int = 14, max_extra_edges: int = 25) -> Graph:
    """Small random labelled directed graphs (idiom of test_properties.py)."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = Graph(name=f"random{seed}")
    for index in range(num_nodes):
        graph.add_node(f"n{index}", rng.choice(NODE_LABELS))
    num_edges = draw(st.integers(min_value=1, max_value=max_extra_edges))
    for _ in range(num_edges):
        source = f"n{rng.randrange(num_nodes)}"
        target = f"n{rng.randrange(num_nodes)}"
        if source != target:
            graph.add_edge(source, target, rng.choice(EDGE_LABELS))
    return graph


def _pattern_from_graph(graph: Graph, rng: random.Random, max_edges: int = 3) -> Pattern | None:
    """Lift a small connected subgraph of *graph* into a pattern."""
    anchors = [node for node in graph.nodes() if graph.degree(node) > 0]
    if not anchors:
        return None
    anchor = rng.choice(sorted(anchors, key=str))
    node_map = {anchor: "x"}
    nodes = {"x": graph.node_label(anchor)}
    edges: list[PatternEdge] = []
    frontier = [anchor]
    for _ in range(rng.randint(1, max_edges)):
        base = rng.choice(frontier)
        incident = list(graph.out_edges(base)) + list(graph.in_edges(base))
        if not incident:
            continue
        edge = rng.choice(incident)
        other = edge.target if edge.source == base else edge.source
        if other not in node_map:
            node_map[other] = f"p{len(node_map)}"
            nodes[node_map[other]] = graph.node_label(other)
            frontier.append(other)
        edges.append(PatternEdge(node_map[edge.source], node_map[edge.target], edge.label))
    if not edges:
        return None
    return Pattern(nodes=nodes, edges=edges, x="x")


def _assert_view_matches_dicts(graph: Graph, view: ColumnarFragment, rng: random.Random):
    """Every columnar probe must agree with its dict-path definition."""
    for label in graph.node_labels():
        assert view.nodes_with_label(label) == graph.nodes_with_label(label)
    pattern = _pattern_from_graph(graph, rng)
    if pattern is None:
        return
    expanded = pattern.expanded()
    pool = sorted(graph.nodes(), key=str)
    for pattern_node in expanded.nodes():
        requirement = view.compile_requirement(expanded, pattern_node)
        expected = [
            node
            for node in pool
            if graph.node_label(node) == expanded.label(pattern_node)
            and degree_consistent(graph, node, expanded, pattern_node)
        ]
        assert view.filter_candidates(pool, requirement) == expected
    vectorized = view.dual_simulation(expanded)
    if vectorized is not None:  # patched views decline; callers fall back
        assert vectorized == maximum_dual_simulation(pattern, graph)
    else:
        assert not view.pristine


@pytest.mark.parametrize("use_numpy", NUMPY_MODES)
@given(
    graph=random_graphs(),
    seed=st.integers(min_value=0, max_value=10_000),
    always_patch=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_columnar_tracks_random_deltas(use_numpy, graph, seed, always_patch):
    """compile → batch_update → recompile-or-patch → equality, repeatedly."""
    rng = random.Random(seed)
    with numpy_disabled(not use_numpy):
        # rebuild_fraction=1.0 forces the delta-patch path, 0.0 forces a
        # full recompile at every refresh; both must stay exact.
        view = ColumnarFragment(graph, rebuild_fraction=1.0 if always_patch else 0.0)
        _assert_view_matches_dicts(graph, view, rng)
        for _ in range(3):
            batch = random_update_batch(
                graph, size=rng.randint(1, 8), seed=rng.randrange(10_000)
            )
            batch.apply(graph)
            view.refresh()
            assert view.built_version == graph.version
            _assert_view_matches_dicts(graph, view, rng)


@pytest.mark.parametrize("use_numpy", NUMPY_MODES)
@given(graph=random_graphs(), seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_batch_update_then_recompile_equals_fresh_compile(use_numpy, graph, seed):
    """A patched-then-recompiled view is indistinguishable from a fresh one."""
    rng = random.Random(seed)
    with numpy_disabled(not use_numpy):
        view = ColumnarFragment(graph, rebuild_fraction=1.0)
        batch = random_update_batch(
            graph, size=rng.randint(1, 8), seed=rng.randrange(10_000)
        )
        batch.apply(graph)  # applies as one batch_update internally
        view.refresh()
        view._build()  # the lifecycle-owned compile boundary
        fresh = ColumnarFragment(graph)
        assert view.pristine and fresh.pristine
        for label in graph.node_labels():
            assert view.nodes_with_label(label) == fresh.nodes_with_label(label)
        pattern = _pattern_from_graph(graph, rng)
        if pattern is not None:
            expanded = pattern.expanded()
            assert view.dual_simulation(expanded) == fresh.dual_simulation(expanded)


# ----------------------------------------------------------------------
# 50 seeds: every matcher, columnar on == columnar off
# ----------------------------------------------------------------------
def _workload(seed: int):
    """One seeded random (graph, patterns) pair, small enough to enumerate."""
    graph = synthetic_graph(
        num_nodes=40 + (seed % 5) * 10,
        num_edges=120 + (seed % 7) * 30,
        num_node_labels=4 + (seed % 3),
        num_edge_labels=3,
        seed=seed,
    )
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(
        graph, predicate, count=2, max_pattern_edges=3, d=2, seed=seed
    )
    patterns = [rule.antecedent for rule in rules] + [rule.pr_pattern() for rule in rules]
    return graph, patterns


def _canonical_mappings(mappings: list[dict]) -> list[tuple]:
    return sorted(
        tuple(sorted((str(k), str(v)) for k, v in mapping.items()))
        for mapping in mappings
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_vf2_columnar_equals_dict(seed):
    graph, patterns = _workload(seed)
    plain = VF2Matcher(use_columnar=False)
    columnar = VF2Matcher(use_columnar=True)
    for pattern in patterns:
        assert columnar.match_set(graph, pattern) == plain.match_set(graph, pattern)
        expected = plain.find_all(graph, pattern)
        actual = columnar.find_all(graph, pattern)
        assert _canonical_mappings(actual) == _canonical_mappings(expected)


@pytest.mark.parametrize("seed", SEEDS)
def test_simulation_columnar_equals_dict(seed):
    graph, patterns = _workload(seed)
    plain = SimulationMatcher(use_columnar=False)
    columnar = SimulationMatcher(use_columnar=True)
    for pattern in patterns:
        assert columnar.match_set(graph, pattern) == plain.match_set(graph, pattern)


@pytest.mark.parametrize("seed", SEEDS)
def test_guided_columnar_equals_dict(seed):
    graph, patterns = _workload(seed)
    plain = GuidedMatcher(use_columnar=False)
    columnar = GuidedMatcher(use_columnar=True)
    for pattern in patterns:
        assert columnar.match_set(graph, pattern) == plain.match_set(graph, pattern)


# ----------------------------------------------------------------------
# full pipelines: backends × columnar modes × numpy modes, one fingerprint
# ----------------------------------------------------------------------
def _eip_fingerprint(result):
    return (
        sorted(map(str, result.identified)),
        sorted(
            (rule.name, round(confidence, 9))
            for rule, confidence in result.rule_confidences.items()
        ),
        sorted(
            (rule.name, tuple(sorted(map(str, matches))))
            for rule, matches in result.rule_matches.items()
        ),
    )


def test_eip_one_fingerprint_across_backends_columnar_and_numpy_modes():
    graph = synthetic_graph(150, 450, num_node_labels=6, num_edge_labels=4, seed=0)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(graph, predicate, count=3, max_pattern_edges=3, d=2, seed=0)

    fingerprints = set()
    for use_numpy in NUMPY_MODES:
        with numpy_disabled(not use_numpy):
            for backend in BACKENDS:
                for use_columnar in (False, True):
                    result = identify_entities(
                        graph,
                        rules,
                        eta=0.5,
                        num_workers=2,
                        algorithm="match",
                        backend=backend,
                        executor_workers=2,
                        use_columnar=use_columnar,
                    )
                    fingerprints.add(repr(_eip_fingerprint(result)))
    assert len(fingerprints) == 1


def _dmine_fingerprint(result):
    return sorted(
        (
            rule.name,
            info.support,
            round(info.confidence, 9),
            tuple(sorted(map(str, info.matches))),
        )
        for rule, info in result.all_rules.items()
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_dmine_equivalent_across_columnar_modes(backend):
    graph = synthetic_graph(150, 450, num_node_labels=6, num_edge_labels=4, seed=2)
    predicate = most_frequent_predicates(graph, top=1)[0]
    fingerprints = set()
    for use_numpy in NUMPY_MODES:
        with numpy_disabled(not use_numpy):
            for use_columnar in (False, True):
                config = DMineConfig(
                    k=3,
                    d=2,
                    sigma=1,
                    num_workers=2,
                    max_edges=2,
                    max_extensions_per_rule=6,
                    max_rules_per_round=10,
                    backend=backend,
                    executor_workers=2,
                    use_columnar=use_columnar,
                )
                fingerprints.add(repr(_dmine_fingerprint(dmine(graph, predicate, config))))
    assert len(fingerprints) == 1
