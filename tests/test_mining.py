"""Tests for expansion, incremental diversification, reduction and DMine."""

import math

import pytest

from repro.exceptions import MiningError
from repro.matching import VF2Matcher
from repro.metrics import DiversificationObjective, evaluate_rule, predicate_stats
from repro.mining import (
    DMine,
    DMineConfig,
    IncrementalDiversifier,
    apply_reduction_rules,
    candidate_extensions,
    discover_and_diversify,
    dmine,
    dmine_baseline,
    greedy_diversify,
)
from repro.mining.incdiv import RuleInfo
from repro.mining.local_mine import LocalMiner, seed_rule
from repro.partition import partition_graph
from repro.pattern.radius import pattern_radius


class TestConfig:
    def test_defaults_are_valid(self):
        config = DMineConfig()
        assert config.rounds == config.max_edges

    def test_invalid_values_rejected(self):
        with pytest.raises(MiningError):
            DMineConfig(k=0)
        with pytest.raises(MiningError):
            DMineConfig(d=0)
        with pytest.raises(MiningError):
            DMineConfig(sigma=-1)
        with pytest.raises(MiningError):
            DMineConfig(lam=2.0)
        with pytest.raises(MiningError):
            DMineConfig(num_workers=0)
        with pytest.raises(MiningError):
            DMineConfig(matcher="magic")
        with pytest.raises(MiningError):
            DMineConfig(max_rules_per_round=0)

    def test_without_optimizations(self):
        config = DMineConfig(k=5, d=2).without_optimizations()
        assert not config.use_incremental_diversification
        assert not config.use_reduction_rules
        assert not config.use_bisimulation_filter
        assert config.k == 5


class TestSeedAndExpansion:
    def test_seed_rule_shape(self, visit_predicate):
        seed = seed_rule(visit_predicate)
        assert seed.antecedent.num_edges == 0
        assert seed.consequent_label == "visit"

    def test_extensions_add_exactly_one_edge(self, g1, visit_predicate):
        seed = seed_rule(visit_predicate)
        extensions = candidate_extensions(
            g1, seed, ["cust1", "cust2"], VF2Matcher(), max_radius=2, max_extensions=50
        )
        assert extensions
        for extension in extensions:
            assert extension.antecedent.num_edges == 1
            assert pattern_radius(extension.pr_pattern()) <= 2

    def test_extensions_never_duplicate_consequent(self, g1, visit_predicate):
        seed = seed_rule(visit_predicate)
        extensions = candidate_extensions(
            g1, seed, ["cust1"], VF2Matcher(), max_radius=2, max_extensions=100
        )
        for extension in extensions:
            assert not extension.antecedent.has_edge(
                extension.x, extension.y, extension.consequent_label
            )

    def test_extension_cap_respected(self, g1, visit_predicate):
        seed = seed_rule(visit_predicate)
        extensions = candidate_extensions(
            g1, seed, ["cust1", "cust2", "cust3"], VF2Matcher(), max_radius=2, max_extensions=3
        )
        assert len(extensions) <= 3

    def test_extensions_of_real_rule_are_supersets(self, g1, r5):
        extensions = candidate_extensions(
            g1, r5, ["cust1"], VF2Matcher(), max_radius=2, max_extensions=20
        )
        for extension in extensions:
            assert extension.antecedent.num_edges == r5.antecedent.num_edges + 1

    def test_no_centers_no_extensions(self, g1, r5):
        assert candidate_extensions(g1, r5, [], VF2Matcher(), max_radius=2) == []


class TestLocalMiner:
    def test_local_supports_sum_to_global(self, g1, visit_predicate):
        config = DMineConfig(k=2, d=2, num_workers=3)
        fragments = partition_graph(
            g1, 3, centers=g1.nodes_with_label("cust"), d=2, seed=0
        )
        miners = [LocalMiner(fragment, visit_predicate, config) for fragment in fragments]
        assert sum(miner.supp_q_local for miner in miners) == 5
        assert sum(miner.supp_q_bar_local for miner in miners) == 1

    def test_evaluate_message_fields(self, g1, r7, visit_predicate):
        config = DMineConfig(k=2, d=2, num_workers=2)
        fragments = partition_graph(
            g1, 2, centers=g1.nodes_with_label("cust"), d=2, seed=0
        )
        miners = [LocalMiner(fragment, visit_predicate, config) for fragment in fragments]
        messages = [miner.evaluate([r7])[0] for miner in miners]
        assert sum(message.supp_r for message in messages) == 3
        assert sum(message.supp_q_qbar for message in messages) == 1
        union = set().union(*(message.rule_matches for message in messages))
        assert union == {"cust1", "cust2", "cust3"}


class TestIncrementalDiversifier:
    def _info(self, confidence, matches, extendable=True):
        return RuleInfo(
            confidence=confidence,
            support=len(matches),
            matches=frozenset(matches),
            upper_confidence=confidence,
            extendable=extendable,
        )

    def test_fill_and_topk(self, g1_rules):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        diversifier = IncrementalDiversifier(objective, k=2)
        r1, r5, r6, r7, r8 = g1_rules
        infos = {
            r7: self._info(0.6, {"cust1", "cust2", "cust3"}),
            r8: self._info(0.2, {"cust6"}),
        }
        diversifier.update(infos, infos)
        assert set(diversifier.top_k()) == {r7, r8}
        assert diversifier.objective_value() == pytest.approx(1.08)

    def test_replacement_improves_queue(self, g1_rules):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        diversifier = IncrementalDiversifier(objective, k=2)
        r1, r5, r6, r7, r8 = g1_rules
        round1 = {
            r5: self._info(0.8, {"cust1", "cust2", "cust3", "cust4"}),
            r6: self._info(0.2, {"cust4", "cust6"}),
        }
        diversifier.update(round1, dict(round1))
        first_value = diversifier.objective_value()
        round2 = {
            r7: self._info(0.6, {"cust1", "cust2", "cust3"}),
            r8: self._info(0.2, {"cust6"}),
        }
        accumulated = {**round1, **round2}
        diversifier.update(round2, accumulated)
        assert diversifier.objective_value() >= first_value

    def test_trivial_rules_ignored(self, g1_rules):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        diversifier = IncrementalDiversifier(objective, k=2)
        r1, r5, *_ = g1_rules
        infos = {r1: self._info(math.inf, {"cust1"}), r5: self._info(0.8, {"cust2"})}
        diversifier.update(infos, infos)
        assert r1 not in diversifier.top_k()

    def test_min_pair_score_before_full(self):
        objective = DiversificationObjective(lam=0.5, k=4, normalizer=5)
        diversifier = IncrementalDiversifier(objective, k=4)
        assert diversifier.min_pair_score == -math.inf

    def test_invalid_k(self):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        with pytest.raises(ValueError):
            IncrementalDiversifier(objective, k=0)


class TestReductionRules:
    def _info(self, confidence, upper, extendable=True):
        return RuleInfo(
            confidence=confidence,
            support=1,
            matches=frozenset({"a"}),
            upper_confidence=upper,
            extendable=extendable,
        )

    def test_no_pruning_before_queue_full(self, g1_rules):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        r1, r5, *_ = g1_rules
        outcome = apply_reduction_rules(
            {r1: self._info(0.1, 0.1)},
            {r5: self._info(0.1, 0.1)},
            objective,
            min_pair_score=-math.inf,
        )
        assert r1 in outcome.sigma
        assert r5 in outcome.extendable

    def test_non_extendable_removed_from_frontier(self, g1_rules):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        r1, r5, *_ = g1_rules
        outcome = apply_reduction_rules(
            {},
            {r1: self._info(0.5, 0.5, extendable=False), r5: self._info(0.5, 0.5)},
            objective,
            min_pair_score=-math.inf,
        )
        assert r1 not in outcome.extendable
        assert r5 in outcome.extendable

    def test_hopeless_sigma_rules_pruned(self, g1_rules):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        r1, r5, r6, *_ = g1_rules
        # With F'_m = 1.4, a conf-6.0 rule can still contribute (0.1*6 + 1 =
        # 1.6 > 1.4) but a conf-0.001 rule cannot (≈1.0 <= 1.4).  The weak ΔE
        # rule survives only because it could pair with the strong Σ rule.
        outcome = apply_reduction_rules(
            {r1: self._info(0.001, 0.001), r6: self._info(6.0, 6.0)},
            {r5: self._info(0.001, 0.001)},
            objective,
            min_pair_score=1.4,
        )
        assert r1 not in outcome.sigma
        assert r6 in outcome.sigma
        assert r5 in outcome.extendable
        assert outcome.pruned_sigma >= 1

    def test_hopeless_delta_rules_pruned_without_strong_partner(self, g1_rules):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        r1, r5, *_ = g1_rules
        outcome = apply_reduction_rules(
            {r1: self._info(0.001, 0.001)},
            {r5: self._info(0.001, 0.001)},
            objective,
            min_pair_score=1.4,
        )
        assert r1 not in outcome.sigma
        assert r5 not in outcome.extendable

    def test_protected_rules_survive(self, g1_rules):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        r1, r5, *_ = g1_rules
        outcome = apply_reduction_rules(
            {r1: self._info(0.001, 0.001)},
            {},
            objective,
            min_pair_score=10.0,
            protected={r1},
        )
        assert r1 in outcome.sigma


class TestGreedyDiversify:
    def _info(self, confidence, matches):
        return RuleInfo(
            confidence=confidence, support=len(matches), matches=frozenset(matches)
        )

    def test_prefers_disjoint_high_confidence(self, g1_rules):
        r1, r5, r6, r7, r8 = g1_rules
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        infos = {
            r1: self._info(0.6, {"cust1", "cust2", "cust3"}),
            r7: self._info(0.6, {"cust1", "cust2", "cust3"}),
            r8: self._info(0.2, {"cust6"}),
        }
        chosen, value = discover_and_diversify(infos, 2, objective)
        assert r8 in chosen
        assert value == pytest.approx(1.08)

    def test_k_larger_than_candidates(self, g1_rules):
        r1, *_ = g1_rules
        objective = DiversificationObjective(lam=0.5, k=4, normalizer=5)
        chosen = greedy_diversify({r1: self._info(0.5, {"a"})}, 4, objective)
        assert chosen == [r1]

    def test_odd_k_takes_best_single_last(self, g1_rules):
        r1, r5, r6, *_ = g1_rules
        objective = DiversificationObjective(lam=0.5, k=3, normalizer=5)
        infos = {
            r1: self._info(0.9, {"a"}),
            r5: self._info(0.5, {"b"}),
            r6: self._info(0.1, {"c"}),
        }
        chosen = greedy_diversify(infos, 3, objective)
        assert len(chosen) == 3

    def test_invalid_k(self):
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=5)
        with pytest.raises(ValueError):
            greedy_diversify({}, 0, objective)


class TestDMineEndToEnd:
    @pytest.fixture(scope="class")
    def g1_result(self, g1, visit_predicate):
        config = DMineConfig(
            k=2, d=2, sigma=1, lam=0.5, num_workers=2, max_edges=3,
            max_extensions_per_rule=12, max_rules_per_round=25, seed=0,
        )
        return dmine(g1, visit_predicate, config)

    def test_returns_at_most_k_rules(self, g1_result):
        assert 0 < len(g1_result.top_k) <= 2

    def test_rules_are_nontrivial_and_supported(self, g1_result):
        for mined in g1_result.top_k:
            assert mined.support >= 1
            assert not math.isinf(mined.confidence)
            assert mined.rule.antecedent.num_edges >= 1
            assert mined.rule.radius <= 2

    def test_reported_stats_match_direct_evaluation(self, g1, g1_result, visit_predicate):
        stats = predicate_stats(g1, visit_predicate)
        for mined in g1_result.top_k:
            evaluation = evaluate_rule(g1, mined.rule, stats=stats)
            assert evaluation.supp_r == mined.support
            assert evaluation.confidence == pytest.approx(mined.confidence)
            assert evaluation.rule_matches == mined.matches

    def test_objective_value_consistent(self, g1_result, g1, visit_predicate):
        stats = predicate_stats(g1, visit_predicate)
        objective = DiversificationObjective(lam=0.5, k=2, normalizer=stats.normalizer)
        recomputed = objective.total_from_matches(
            [mined.confidence for mined in g1_result.top_k],
            [mined.matches for mined in g1_result.top_k],
        )
        assert g1_result.objective_value == pytest.approx(recomputed)

    def test_timings_and_counters_populated(self, g1_result):
        assert g1_result.rounds_executed >= 1
        assert g1_result.candidates_generated > 0
        assert g1_result.timings.simulated_parallel_time > 0
        assert g1_result.num_rules_discovered == len(g1_result.all_rules)

    def test_baseline_finds_comparable_objective(self, g1, visit_predicate, g1_result):
        config = DMineConfig(
            k=2, d=2, sigma=1, lam=0.5, num_workers=2, max_edges=3,
            max_extensions_per_rule=12, max_rules_per_round=25, seed=0,
        )
        baseline = dmine_baseline(g1, visit_predicate, config)
        assert baseline.top_k
        # Both are 2-approximations of the same objective; neither should be
        # drastically worse than the other.
        assert baseline.objective_value >= 0.5 * g1_result.objective_value - 1e-9
        assert g1_result.objective_value >= 0.5 * baseline.objective_value - 1e-9

    def test_sigma_threshold_enforced(self, g1, visit_predicate):
        config = DMineConfig(
            k=2, d=2, sigma=4, num_workers=2, max_edges=2,
            max_extensions_per_rule=10, max_rules_per_round=20,
        )
        result = DMine(config).mine(g1, visit_predicate)
        for info in result.all_rules.values():
            assert info.support >= 4

    def test_varying_workers_same_rule_quality(self, g1, visit_predicate):
        values = []
        for workers in (1, 3):
            config = DMineConfig(
                k=2, d=2, sigma=1, num_workers=workers, max_edges=2,
                max_extensions_per_rule=10, max_rules_per_round=20, seed=0,
            )
            values.append(dmine(g1, visit_predicate, config).objective_value)
        assert values[0] > 0 and values[1] > 0

    def test_mining_on_social_graph_finds_planted_rule(
        self, small_pokec, pokec_book_predicate
    ):
        config = DMineConfig(
            k=2, d=1, sigma=5, num_workers=3, max_edges=2,
            max_extensions_per_rule=8, max_rules_per_round=15, seed=0,
        )
        result = dmine(small_pokec, pokec_book_predicate, config)
        assert result.top_k
        # The planted regularity (profession-development readers) should give
        # at least one rule with confidence well above 1 (positively
        # correlated antecedent and consequent under the Bayes factor).
        assert max(mined.confidence for mined in result.top_k) > 1.0
