"""Tests for graph statistics and views."""

import pytest

from repro.graph import Graph, induced_subgraph, subgraph_from_edges, summarize
from repro.graph.statistics import degree_histogram, most_frequent_edge_patterns
from repro.graph.views import is_subgraph


class TestSummaries:
    def test_summarize_counts(self, g1):
        summary = summarize(g1)
        assert summary.num_nodes == g1.num_nodes
        assert summary.num_edges == g1.num_edges
        assert summary.num_node_labels == len(g1.node_labels())
        assert summary.avg_out_degree == pytest.approx(g1.num_edges / g1.num_nodes)
        assert "|V|" in summary.as_row()

    def test_summarize_empty_graph(self):
        summary = summarize(Graph(name="empty"))
        assert summary.num_nodes == 0
        assert summary.avg_out_degree == 0.0

    def test_degree_histogram(self, g1):
        histogram = degree_histogram(g1)
        assert sum(histogram.values()) == g1.num_nodes
        assert all(degree >= 0 for degree in histogram)

    def test_most_frequent_edge_patterns(self, g1):
        patterns = most_frequent_edge_patterns(g1, top=3)
        assert len(patterns) == 3
        counts = [count for *_rest, count in patterns]
        assert counts == sorted(counts, reverse=True)
        top = patterns[0]
        assert top[3] >= patterns[-1][3]


class TestViews:
    def test_induced_subgraph_function(self, g1):
        sub = induced_subgraph(g1, ["cust1", "cust2", "LeBernardin"])
        assert sub.num_nodes == 3
        assert sub.has_edge("cust1", "cust2", "friend")
        assert sub.has_edge("cust1", "LeBernardin", "visit")

    def test_subgraph_from_edges(self, g1):
        sub = subgraph_from_edges(g1, [("cust1", "LeBernardin", "visit")])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1

    def test_subgraph_from_edges_rejects_missing_edge(self, g1):
        with pytest.raises(ValueError):
            subgraph_from_edges(g1, [("cust1", "LeBernardin", "hates")])

    def test_is_subgraph(self, g1):
        sub = induced_subgraph(g1, ["cust1", "cust2"])
        assert is_subgraph(sub, g1)
        other = Graph()
        other.add_node("cust1", "restaurant")
        assert not is_subgraph(other, g1)
