"""Unit tests of the columnar fragment kernel (repro.graph.columnar).

Covers the LabelTable interning contract, CSR construction on both the
numpy and the pure-``array`` backend, the compiled-requirement filter
against its dict-path definition, delta-driven patching (overlays answer
probes exactly like a fresh compile; vectorized paths suspend until the
next compile boundary), the probe-time staleness guard, and the
per-process registry.  Cross-implementation equivalence at scale lives in
tests/test_columnar_equivalence.py.
"""

from __future__ import annotations

import os
import pickle
from contextlib import contextmanager

import pytest

from repro.datasets import most_frequent_predicates, synthetic_graph
from repro.graph import Graph
from repro.graph.columnar import (
    ColumnarFragment,
    LabelTable,
    columnar_view,
    discard_columnar,
    numpy_active,
    numpy_or_none,
    registered_columnar,
)
from repro.matching.candidates import degree_consistent
from repro.matching.simulation import maximum_dual_simulation
from repro.pattern import Pattern, PatternEdge
from repro.stream import random_update_batch


@contextmanager
def numpy_disabled(disabled: bool = True):
    """Force the pure-``array`` code path for compiles inside the block."""
    if not disabled:
        yield
        return
    previous = os.environ.get("REPRO_NO_NUMPY")
    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_NO_NUMPY", None)
        else:
            os.environ["REPRO_NO_NUMPY"] = previous


#: Both compile backends when numpy is importable, else just the stdlib one.
BACKENDS = [True, False] if numpy_or_none() is not None else [False]


def _small_graph(seed: int = 3) -> Graph:
    return synthetic_graph(60, 180, num_node_labels=4, num_edge_labels=3, seed=seed)


def _pattern_for(graph: Graph) -> Pattern:
    predicate = most_frequent_predicates(graph, top=1)[0]
    return predicate


# ----------------------------------------------------------------------
# LabelTable
# ----------------------------------------------------------------------
class TestLabelTable:
    def test_ids_are_stable_and_dense(self):
        table = LabelTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0
        assert len(table) == 2
        assert table.label_of(1) == "b"

    def test_id_of_never_assigns(self):
        table = LabelTable()
        assert table.id_of("never-seen") is None
        assert len(table) == 0

    def test_pickle_roundtrip_preserves_ids(self):
        table = LabelTable()
        for label in ("x", "y", "z"):
            table.intern(label)
        revived = pickle.loads(pickle.dumps(table))
        assert [revived.id_of(label) for label in ("x", "y", "z")] == [0, 1, 2]
        assert revived.intern("w") == 3

    def test_graph_exposes_shared_table(self):
        graph = _small_graph()
        table = graph.label_table
        assert table is graph.label_table  # memoised
        for label in graph.node_labels():
            assert table.id_of(label) is not None
        for label in graph.edge_label_counts():
            assert table.id_of(label) is not None


# ----------------------------------------------------------------------
# numpy feature probe
# ----------------------------------------------------------------------
def test_probe_honours_disable_env():
    with numpy_disabled():
        assert numpy_or_none() is None
        assert not numpy_active()


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_compile_backend_follows_probe(use_numpy):
    graph = _small_graph()
    with numpy_disabled(not use_numpy):
        view = ColumnarFragment(graph)
    assert ("numpy" in repr(view)) == use_numpy


# ----------------------------------------------------------------------
# probes against the dict-path definitions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_buckets_match_graph(use_numpy):
    graph = _small_graph()
    with numpy_disabled(not use_numpy):
        view = ColumnarFragment(graph)
    for label in graph.node_labels():
        assert view.nodes_with_label(label) == graph.nodes_with_label(label)
    assert view.nodes_with_label("no-such-label") == frozenset()


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_filter_candidates_equals_dict_filter(use_numpy):
    graph = _small_graph()
    pattern = _pattern_for(graph).expanded()
    with numpy_disabled(not use_numpy):
        view = ColumnarFragment(graph)
    pool = sorted(graph.nodes(), key=str)
    for pattern_node in pattern.nodes():
        requirement = view.compile_requirement(pattern, pattern_node)
        survivors = view.filter_candidates(pool, requirement)
        expected = [
            node
            for node in pool
            if graph.node_label(node) == pattern.label(pattern_node)
            and degree_consistent(graph, node, pattern, pattern_node)
        ]
        assert survivors == expected
        for node in pool:
            assert view.dominates(node, requirement) == (node in set(expected))


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_dual_simulation_equals_dict_fixpoint(use_numpy):
    graph = _small_graph()
    pattern = _pattern_for(graph)
    with numpy_disabled(not use_numpy):
        view = ColumnarFragment(graph)
        result = view.dual_simulation(pattern.expanded())
    assert result == maximum_dual_simulation(pattern, graph)


def test_unknown_pattern_label_filters_everything():
    graph = _small_graph()
    view = ColumnarFragment(graph)
    alien = Pattern(nodes={"x": "label-not-in-graph"}, edges=[], x="x")
    requirement = view.compile_requirement(alien, alien.x)
    assert requirement.label_id == -1
    assert view.filter_candidates(sorted(graph.nodes(), key=str), requirement) == []
    assert view.dual_simulation(alien) == {"x": set()}


# ----------------------------------------------------------------------
# invalidation: patch overlays and recompiles
# ----------------------------------------------------------------------
@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_patched_view_answers_like_a_fresh_compile(use_numpy):
    graph = _small_graph(seed=5)
    pattern = _pattern_for(graph).expanded()
    with numpy_disabled(not use_numpy):
        view = ColumnarFragment(graph, rebuild_fraction=1.0)  # always patch
        for position in range(3):
            batch = random_update_batch(graph, size=6, seed=40 + position)
            batch.apply(graph)
            view.refresh()
            assert view.built_version == graph.version
            assert view.statistics.delta_applies > 0
            assert not view.is_stale
            for label in graph.node_labels():
                assert view.nodes_with_label(label) == graph.nodes_with_label(label)
            pool = sorted(graph.nodes(), key=str)
            for pattern_node in pattern.nodes():
                requirement = view.compile_requirement(pattern, pattern_node)
                assert view.filter_candidates(pool, requirement) == [
                    node
                    for node in pool
                    if graph.node_label(node) == pattern.label(pattern_node)
                    and degree_consistent(graph, node, pattern, pattern_node)
                ]


def test_patched_view_suspends_vectorized_paths_until_recompile():
    graph = _small_graph(seed=6)
    pattern = _pattern_for(graph).expanded()
    view = ColumnarFragment(graph, rebuild_fraction=1.0)
    assert view.pristine
    batch = random_update_batch(graph, size=6, seed=9)
    batch.apply(graph)
    view.refresh()
    if view.pristine:  # a net-empty batch leaves no overlays; force one
        graph.add_node("overlay-probe", sorted(graph.node_labels())[0])
        view.refresh()
    assert not view.pristine
    assert view.dual_simulation(pattern) is None  # caller falls back to dicts
    assert view.statistics.fallbacks > 0
    view._build()  # the compile boundary restores the fast path
    assert view.pristine
    assert view.dual_simulation(pattern) == maximum_dual_simulation(pattern, graph)


def test_rebuild_fraction_zero_always_recompiles():
    graph = _small_graph(seed=7)
    view = ColumnarFragment(graph, rebuild_fraction=0.0)
    builds_before = view.statistics.builds
    graph.add_node("fresh", sorted(graph.node_labels())[0])
    view.refresh()
    assert view.statistics.builds == builds_before + 1
    assert view.pristine and view.built_version == graph.version


def test_apply_delta_rejects_wrong_base_version():
    graph = _small_graph(seed=8)
    view = ColumnarFragment(graph)
    graph.add_node("one", sorted(graph.node_labels())[0])
    graph.add_node("two", sorted(graph.node_labels())[0])
    deltas = graph.deltas_since(view.built_version)
    assert deltas is not None and len(deltas) == 2
    assert not view.apply_delta(deltas[1])  # skips a version: refused
    assert view.apply_delta(deltas[0]) and view.apply_delta(deltas[1])
    assert view.built_version == graph.version


def test_probe_guard_refreshes_stale_views():
    graph = _small_graph(seed=9)
    view = ColumnarFragment(graph)
    label = sorted(graph.node_labels())[0]
    before = view.nodes_with_label(label)
    graph.add_node("guard-probe", label)
    assert view.nodes_with_label(label) == before | {"guard-probe"}


def test_rebuild_fraction_validation():
    graph = _small_graph(seed=10)
    with pytest.raises(ValueError):
        ColumnarFragment(graph, rebuild_fraction=1.5)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_memoises_and_discards():
    graph = _small_graph(seed=11)
    assert registered_columnar(graph) is None
    view = columnar_view(graph)
    assert columnar_view(graph) is view
    assert registered_columnar(graph) is view
    assert discard_columnar(graph)
    assert not discard_columnar(graph)
    assert registered_columnar(graph) is None


def test_view_holds_graph_weakly():
    view = columnar_view(_small_graph(seed=12))
    import gc

    gc.collect()
    from repro.exceptions import GraphError

    with pytest.raises(GraphError):
        _ = view.graph


# ----------------------------------------------------------------------
# CSR layout sanity on a hand-built graph
# ----------------------------------------------------------------------
@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_csr_matches_hand_built_adjacency(use_numpy):
    graph = Graph(name="csr-hand")
    for node, label in [("a", "L"), ("b", "L"), ("c", "M")]:
        graph.add_node(node, label)
    graph.add_edge("a", "b", "e")
    graph.add_edge("a", "c", "e")
    graph.add_edge("b", "c", "f")
    with numpy_disabled(not use_numpy):
        view = ColumnarFragment(graph)
    edge_id = view.labels.id_of("e")
    indptr, indices = view._out_csr[edge_id]
    position = view._pos["a"]
    row = {view._node_ids[indices[offset]] for offset in range(indptr[position], indptr[position + 1])}
    assert row == {"b", "c"}
    pattern = Pattern(
        nodes={"x": "L", "y": "M"}, edges=[PatternEdge("x", "y", "e")], x="x"
    )
    assert view.dual_simulation(pattern) == {"x": {"a"}, "y": {"c"}}
