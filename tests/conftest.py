"""Shared fixtures: the paper's example graphs/rules and small social graphs.

Also wires the ``--update-golden`` flag used by the golden-file regression
suite (tests/test_golden.py): running ``pytest --update-golden`` regenerates
the snapshots under ``tests/golden/`` instead of comparing against them.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    example7_graph,
    example7_rule_r2,
    googleplus_like,
    graph_g1,
    graph_g2,
    most_frequent_predicates,
    pokec_like,
    rule_r1,
    rule_r4,
    rule_r5,
    rule_r6,
    rule_r7,
    rule_r8,
    visit_french_predicate,
)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden regression snapshots under tests/golden/",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """Whether this run should regenerate golden files instead of asserting."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def g1():
    """The restaurant-recommendation graph G1 (Fig. 2 left)."""
    return graph_g1()


@pytest.fixture(scope="session")
def g2():
    """The fake-account graph G2 (Fig. 2 right)."""
    return graph_g2()


@pytest.fixture(scope="session")
def g_ecuador():
    """The Example 6/7 graph."""
    return example7_graph()


@pytest.fixture(scope="session")
def r1():
    return rule_r1()


@pytest.fixture(scope="session")
def r2():
    return example7_rule_r2()


@pytest.fixture(scope="session")
def r4():
    return rule_r4()


@pytest.fixture(scope="session")
def r5():
    return rule_r5()


@pytest.fixture(scope="session")
def r6():
    return rule_r6()


@pytest.fixture(scope="session")
def r7():
    return rule_r7()


@pytest.fixture(scope="session")
def r8():
    return rule_r8()


@pytest.fixture(scope="session")
def g1_rules(r1, r5, r6, r7, r8):
    """The five visit-predicate rules used throughout the paper's examples."""
    return [r1, r5, r6, r7, r8]


@pytest.fixture(scope="session")
def visit_predicate():
    return visit_french_predicate()


@pytest.fixture(scope="session")
def small_pokec():
    """A small Pokec-like graph for integration tests."""
    return pokec_like(num_users=120, num_communities=6, seed=3)


@pytest.fixture(scope="session")
def small_googleplus():
    """A small Google+-like graph for integration tests."""
    return googleplus_like(num_users=120, num_circles=6, seed=3)


@pytest.fixture(scope="session")
def pokec_book_predicate(small_pokec):
    """The planted like_book(user, "personal development") predicate."""
    for predicate in most_frequent_predicates(small_pokec, top=20):
        edge = predicate.edges()[0]
        if edge.label == "like_book" and predicate.label(predicate.y) == "personal development":
            return predicate
    raise RuntimeError("planted predicate missing from the Pokec-like generator")


@pytest.fixture(scope="session")
def googleplus_major_predicate(small_googleplus):
    """The planted major(user, "Computer Science") predicate."""
    for predicate in most_frequent_predicates(small_googleplus, top=20):
        edge = predicate.edges()[0]
        if edge.label == "major" and predicate.label(predicate.y) == "Computer Science":
            return predicate
    raise RuntimeError("planted predicate missing from the Google+-like generator")
