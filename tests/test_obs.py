"""The :mod:`repro.obs` observability layer, end to end.

Covers the three cooperating pieces of docs/observability.md:

* the metrics registry — counter/gauge/histogram families, Prometheus text
  exposition, and the ``snapshot()``/``merge()`` composition that makes
  histogram merging associative (hypothesis-checked);
* the span tracer — deterministic ids, per-thread parent stacks, worker
  record adoption, the JSON-lines round-trip, and the module-level no-op
  fast path used when nothing is installed;
* cross-process statistics collection — the ``snapshot()``/``merge()``
  protocol on the four ``*Statistics`` dataclasses, watermarked deltas,
  and the headline contract: a processes-backend DMine run reports the
  **same aggregate matching counters** as a sequential run of the same
  configuration.

A traced streaming tick is pinned against the acceptance criterion that
coordinator and worker phases appear in one tree whose summed child time
never exceeds its parent span's time.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.mining import DMineConfig, dmine
from repro.obs import (
    MetricsRegistry,
    Tracer,
    active,
    collect_process_metrics,
    disable_collection,
    enable_collection,
    install,
    load_trace,
    merge_worker_metrics,
    override_tracer,
    parse_prometheus,
    quantile_from_buckets,
    registry,
    reset_collection,
    span,
    top_report,
    trace_breakdown,
    tracing_enabled,
    uninstall,
)
from repro.obs.tracing import NOOP_SPAN


@pytest.fixture(autouse=True)
def _pristine_observability():
    """Every test starts and ends with observability fully off."""
    uninstall()
    disable_collection()
    reset_collection()
    registry().reset()
    yield
    uninstall()
    disable_collection()
    reset_collection()
    registry().reset()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counters_accumulate_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", route="/a", method="GET")
        reg.inc("requests_total", 2, route="/a", method="GET")
        reg.inc("requests_total", route="/b", method="GET")
        assert reg.counter_value("requests_total", route="/a", method="GET") == 3
        assert reg.counter_value("requests_total", route="/b", method="GET") == 1
        assert reg.counter_value("requests_total", route="/c", method="GET") == 0
        assert reg.counter_value("absent_total") == 0

    def test_label_names_are_fixed_at_family_creation(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", route="/a")
        with pytest.raises(ValueError, match="expects labels"):
            reg.inc("requests_total", method="GET")

    def test_kind_conflicts_rejected(self):
        reg = MetricsRegistry()
        reg.inc("thing")
        with pytest.raises(ValueError, match="is a counter"):
            reg.set_gauge("thing", 1.0)

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.set_gauge("sessions", 3)
        reg.set_gauge("sessions", 1)
        assert reg.snapshot()["sessions"]["series"][()] == 1

    def test_histogram_buckets_and_quantiles(self):
        reg = MetricsRegistry()
        for value in (0.0005, 0.003, 0.003, 0.2, 99.0):
            reg.observe("latency_seconds", value)
        text = reg.render()
        samples = parse_prometheus(text)
        buckets = samples["latency_seconds_bucket"]
        # Cumulative counts, ending in +Inf == count.
        by_le = {labels["le"]: count for labels, count in buckets}
        assert by_le["0.001"] == 1
        assert by_le["0.005"] == 3
        assert by_le["+Inf"] == 5
        assert samples["latency_seconds_count"][0][1] == 5
        assert samples["latency_seconds_sum"][0][1] == pytest.approx(99.2065)
        assert quantile_from_buckets(buckets, 0.5) == 0.005
        assert math.isinf(quantile_from_buckets(buckets, 0.99))

    def test_render_is_valid_prometheus_text(self):
        reg = MetricsRegistry()
        reg.inc("a_total", 2, help="a counter")
        reg.set_gauge("b", 1.5, session='s"1\n')
        reg.observe("c_seconds", 0.3)
        text = reg.render()
        assert "# TYPE a_total counter" in text
        assert "# HELP a_total a counter" in text
        assert "# TYPE b gauge" in text
        assert "# TYPE c_seconds histogram" in text
        assert '\\"' in text and "\\n" in text  # label escaping
        parsed = parse_prometheus(text)
        assert parsed["a_total"] == [({}, 2.0)]
        assert parsed["b"][0][0] == {"session": 's"1\n'}

    def test_parse_prometheus_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus("what even is this line")

    def test_clear_drops_one_family_series(self):
        reg = MetricsRegistry()
        reg.set_gauge("per_session", 1, session="a")
        reg.inc("kept_total")
        reg.clear("per_session")
        reg.clear("never_existed")  # no-op, not an error
        assert reg.snapshot()["per_session"]["series"] == {}
        assert reg.counter_value("kept_total") == 1

    def test_snapshot_merge_counters_add_gauges_overwrite(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("a_total", 2)
        left.set_gauge("g", 1)
        right.inc("a_total", 3)
        right.set_gauge("g", 7)
        left.merge(right.snapshot())
        assert left.counter_value("a_total") == 5
        assert left.snapshot()["g"]["series"][()] == 7

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(0, 20), max_size=30),
        st.lists(st.floats(0, 20), max_size=30),
        st.lists(st.floats(0, 20), max_size=30),
    )
    def test_histogram_merge_is_associative(self, a, b, c):
        """(A ⊕ B) ⊕ C == A ⊕ (B ⊕ C): exact on bucket counts, approximate
        on the float sums."""

        def observed(values):
            reg = MetricsRegistry()
            for value in values:
                reg.observe("h_seconds", value)
                reg.inc("n_total")
            return reg

        regs = [observed(values) for values in (a, b, c)]

        left = MetricsRegistry()
        left.merge(regs[0].snapshot())
        left.merge(regs[1].snapshot())
        left.merge(regs[2].snapshot())

        bc = MetricsRegistry()
        bc.merge(regs[1].snapshot())
        bc.merge(regs[2].snapshot())
        right = MetricsRegistry()
        right.merge(regs[0].snapshot())
        right.merge(bc.snapshot())

        left_series = left.snapshot().get("h_seconds", {}).get("series", {})
        right_series = right.snapshot().get("h_seconds", {}).get("series", {})
        assert set(left_series) == set(right_series)
        for key, series in left_series.items():
            other = right_series[key]
            assert series["counts"] == other["counts"]
            assert series["count"] == other["count"]
            assert series["sum"] == pytest.approx(other["sum"])
        assert left.counter_value("n_total") == right.counter_value("n_total")
        assert left.counter_value("n_total") == len(a) + len(b) + len(c)


# ----------------------------------------------------------------------
# span tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_and_deterministic_ids(self):
        tracer = Tracer()
        with tracer.span("outer", phase=1) as outer:
            with tracer.span("inner") as inner:
                inner.set(rows=3)
            assert outer.elapsed >= 0.0
        records = tracer.records()
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner_rec, outer_rec = records
        assert outer_rec["span_id"] == "s1" and inner_rec["span_id"] == "s2"
        assert inner_rec["parent_id"] == "s1" and outer_rec["parent_id"] is None
        assert outer_rec["attrs"] == {"phase": 1}
        assert inner_rec["attrs"] == {"rows": 3}
        assert inner_rec["duration"] <= outer_rec["duration"]
        assert inner_rec["start"] >= outer_rec["start"]

    def test_event_is_a_zero_duration_span(self):
        tracer = Tracer()
        with tracer.span("tick"):
            tracer.event("checkpoint", fragment=2)
        checkpoint = tracer.records()[0]
        assert checkpoint["name"] == "checkpoint"
        assert checkpoint["duration"] == 0.0
        assert checkpoint["parent_id"] == "s1"
        assert checkpoint["attrs"] == {"fragment": 2}

    def test_adopt_reparents_and_prefixes(self):
        worker = Tracer()
        with worker.span("worker.verify"):
            with worker.span("index.refresh"):
                pass
        coordinator = Tracer()
        with coordinator.span("round") as round_span:
            coordinator.adopt(
                worker.records(), parent_id=round_span.span_id, prefix="t1.w0."
            )
        adopted = {r["span_id"]: r for r in coordinator.records()}
        verify = adopted["t1.w0.s1"]
        refresh = adopted["t1.w0.s2"]
        assert verify["parent_id"] == "s1"  # root re-parented under the round
        assert refresh["parent_id"] == "t1.w0.s1"  # subtree intact
        # The resulting tree renders as one breakdown with the worker phases
        # nested below the coordinator's round.
        breakdown = trace_breakdown(coordinator.records())
        assert "round" in breakdown and "worker.verify" in breakdown

    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        tracer = Tracer()
        with tracer.span("tick", batch=1):
            tracer.event("migration", centers=2)
        path = tracer.dump_jsonl(tmp_path / "trace.jsonl")
        assert load_trace(path) == tracer.records()

    def test_module_helpers_are_noop_without_tracer(self):
        assert not tracing_enabled()
        with span("anything", x=1) as handle:
            assert handle is NOOP_SPAN
            assert handle.set(y=2) is NOOP_SPAN
            assert handle.elapsed == 0.0

    def test_install_and_override_precedence(self):
        installed = Tracer()
        overriding = Tracer()
        install(installed)
        try:
            assert active() is installed
            with override_tracer(overriding):
                assert active() is overriding
                with span("routed"):
                    pass
                # ``None`` masks the installed tracer for this thread.
                with override_tracer(None):
                    assert not tracing_enabled()
            assert active() is installed
        finally:
            uninstall()
        assert [r["name"] for r in overriding.records()] == ["routed"]
        assert installed.records() == []

    def test_trace_breakdown_empty(self):
        assert trace_breakdown([]) == "empty trace\n"


# ----------------------------------------------------------------------
# statistics snapshot/merge + cross-process collection
# ----------------------------------------------------------------------
class TestStatisticsProtocol:
    def _all_statistics(self):
        from repro.graph.columnar import ColumnarStatistics
        from repro.graph.index import IndexStatistics
        from repro.matching.base import MatchStatistics
        from repro.matching.incremental import StoreStatistics

        return [
            MatchStatistics,
            IndexStatistics,
            ColumnarStatistics,
            StoreStatistics,
        ]

    def test_every_statistics_class_snapshots_and_merges(self):
        for cls in self._all_statistics():
            stats = cls()
            snap = stats.snapshot()
            assert snap and all(value == 0 for value in snap.values())
            first = next(iter(snap))
            setattr(stats, first, 3)
            other = cls()
            other.merge(stats)  # from an instance
            other.merge(stats.snapshot())  # and from a plain dict
            assert getattr(other, first) == 6

    def test_collection_ships_each_increment_exactly_once(self):
        from repro.matching.base import MatchStatistics

        enable_collection()
        stats = MatchStatistics()
        stats.candidates_considered = 5
        delta = collect_process_metrics()
        assert delta["match.candidates_considered"] == 5
        assert collect_process_metrics() is None  # watermarked: no re-ship
        stats.candidates_considered += 2
        assert collect_process_metrics() == {"match.candidates_considered": 2}

    def test_disabled_collection_registers_nothing(self):
        from repro.matching.base import MatchStatistics

        stats = MatchStatistics()
        stats.candidates_considered = 9
        assert collect_process_metrics() is None
        del stats

    def test_merge_worker_metrics_folds_into_counters(self):
        reg = MetricsRegistry()
        merge_worker_metrics(
            reg,
            [
                {"match.candidates_considered": 4},
                None,
                {"match.candidates_considered": 2, "index.builds": 1},
            ],
        )
        assert reg.counter_value("repro_match_candidates_considered_total") == 6
        assert reg.counter_value("repro_index_builds_total") == 1

    def test_reset_collection_clears_watermarks(self):
        from repro.matching.base import MatchStatistics

        enable_collection()
        stats = MatchStatistics()
        stats.candidates_considered = 5
        collect_process_metrics()
        del stats
        reset_collection()
        fresh = MatchStatistics()
        fresh.candidates_considered = 2
        # Without the reset the old watermark (5) would swallow this delta.
        assert collect_process_metrics() == {"match.candidates_considered": 2}


class TestCrossBackendCounters:
    """A processes-backend run must aggregate like a sequential one."""

    @pytest.fixture(scope="class")
    def workload(self):
        graph = synthetic_graph(200, 600, num_node_labels=6, num_edge_labels=4, seed=9)
        predicate = most_frequent_predicates(graph, top=1)[0]
        return graph, predicate

    def _mine_counters(self, graph, predicate, backend):
        reset_collection()
        registry().reset()
        enable_collection()
        try:
            dmine(
                graph,
                predicate,
                DMineConfig(
                    k=3,
                    d=2,
                    sigma=2,
                    num_workers=3,
                    max_edges=2,
                    backend=backend,
                    # The incremental store's hit rates depend on pool
                    # routing; matching counters are the deterministic,
                    # backend-independent aggregate this test pins.
                    use_incremental=False,
                ),
            )
        finally:
            disable_collection()
        return registry().counters("repro_match_")

    def test_processes_report_identical_match_counters(self, workload):
        graph, predicate = workload
        sequential = self._mine_counters(graph, predicate, "sequential")
        processes = self._mine_counters(graph, predicate, "processes")
        assert sequential and any(sequential.values())
        assert processes == sequential


# ----------------------------------------------------------------------
# traced streaming tick (the acceptance criterion)
# ----------------------------------------------------------------------
class TestTracedStreamingTick:
    def test_tick_tree_covers_coordinator_and_worker_phases(self):
        from repro.identification import EIPConfig
        from repro.stream import StreamingIdentifier, random_update_batch

        graph = synthetic_graph(120, 380, num_node_labels=5, num_edge_labels=3, seed=3)
        predicate = most_frequent_predicates(graph, top=1)[0]
        rules = generate_gpars(
            graph, predicate, count=4, max_pattern_edges=3, d=2, seed=3
        )
        tracer = install(Tracer())
        try:
            with StreamingIdentifier(
                graph, rules, config=EIPConfig(eta=0.5, num_workers=2)
            ) as identifier:
                batch = random_update_batch(graph, size=6, seed=31)
                identifier.apply(batch)
        finally:
            uninstall()
        records = tracer.records()
        by_id = {record["span_id"]: record for record in records}
        names = {record["name"] for record in records}
        # Coordinator phases of the tick...
        assert {
            "stream.tick",
            "stream.apply_batch",
            "stream.slice_build",
            "stream.verify",
            "stream.assemble",
        } <= names
        # ...and adopted worker phases in the same tree.
        assert "stream.worker.verify" in names
        ticks = [r for r in records if r["name"] == "stream.tick"]
        assert len(ticks) == 1
        # Every span's children sum to no more than the span itself.
        children_total: dict[str, float] = {}
        for record in records:
            parent = record["parent_id"]
            if parent:
                children_total[parent] = (
                    children_total.get(parent, 0.0) + record["duration"]
                )
        for span_id, total in children_total.items():
            assert total <= by_id[span_id]["duration"] + 1e-6
        # Worker spans hang off a coordinator verify phase: the __init__
        # round adopts under stream.initial_verify, the tick under
        # stream.verify (which itself sits below the tick root).
        verify = next(r for r in records if r["name"] == "stream.verify")
        initial = next(r for r in records if r["name"] == "stream.initial_verify")
        worker_roots = [
            r for r in records if r["name"] == "stream.worker.verify"
        ]
        assert worker_roots
        adoption_points = {verify["span_id"], initial["span_id"]}
        assert {r["parent_id"] for r in worker_roots} <= adoption_points
        assert any(r["parent_id"] == verify["span_id"] for r in worker_roots)
        assert verify["parent_id"] == ticks[0]["span_id"]


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
class TestTopReport:
    def test_renders_health_sessions_and_latency(self):
        reg = MetricsRegistry()
        reg.inc("repro_http_requests_total", 4, method="GET", route="/healthz", status=200)
        for value in (0.001, 0.002, 0.2):
            reg.observe(
                "repro_http_request_seconds", value, method="GET", route="/healthz"
            )
        reg.inc("repro_stream_ticks_total", 2)
        report = top_report(
            "http://127.0.0.1:1",
            {
                "ok": True,
                "sessions": 1,
                "resident_nodes": 42,
                "oldest_retained_version": 7,
            },
            {
                "sessions": [
                    {
                        "session": "abc123",
                        "graph": "synthetic",
                        "algorithm": "match",
                        "graph_version": 9,
                        "identified": 4,
                        "batches_applied": 2,
                    }
                ]
            },
            reg.render(),
        )
        assert "repro top" in report
        assert "abc123" in report
        assert "/healthz" in report
        assert "42" in report
