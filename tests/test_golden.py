"""Golden-file regression suite over the paper's example graphs.

Snapshots of DMine rule sets and EIP match results live under
``tests/golden/``; any change to the mining/matching/identification stack
that alters these outputs fails here with a diff-sized signal.  To
intentionally re-baseline after a semantic change::

    python -m pytest tests/test_golden.py --update-golden

which rewrites the snapshots (and skips the assertions for that run).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.identification import identify_entities
from repro.mining import DMineConfig, dmine
from repro.pattern.canonical import canonical_code

GOLDEN_DIR = Path(__file__).parent / "golden"


def _number(value: float):
    """JSON-safe confidence: 9-decimal float, or the string "inf"."""
    return "inf" if math.isinf(value) else round(value, 9)


def check_golden(name: str, payload: dict, update: bool, directory: Path | None = None) -> None:
    """Compare *payload* against ``tests/golden/<name>.json`` (or rewrite it)."""
    golden_dir = directory if directory is not None else GOLDEN_DIR
    golden_dir.mkdir(exist_ok=True)
    path = golden_dir / f"{name}.json"
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if update:
        path.write_text(rendered)
        pytest.skip(f"golden file {path.name} regenerated")
    if not path.exists():
        pytest.fail(
            f"golden file {path} is missing; generate it with "
            f"'pytest {__file__} --update-golden'"
        )
    expected = json.loads(path.read_text())
    actual = json.loads(rendered)  # normalise tuples/keys the same way
    assert actual == expected, (
        f"{name} diverged from its golden snapshot; if the change is "
        f"intentional rerun with --update-golden"
    )


def _dmine_payload(result) -> dict:
    return {
        "rules": sorted(
            (
                {
                    "pattern": canonical_code(rule.pr_pattern()),
                    "support": info.support,
                    "confidence": _number(info.confidence),
                    "matches": sorted(map(str, info.matches)),
                }
                for rule, info in result.all_rules.items()
            ),
            key=lambda entry: entry["pattern"],
        ),
        "top_k": sorted(
            canonical_code(mined.rule.pr_pattern()) for mined in result.top_k
        ),
        "objective": _number(round(result.objective_value, 9)),
        "rounds": result.rounds_executed,
    }


def _eip_payload(result) -> dict:
    return {
        "identified": sorted(map(str, result.identified)),
        "rules": sorted(
            (
                {
                    "name": rule.name,
                    "confidence": _number(confidence),
                    "matches": sorted(map(str, result.rule_matches[rule])),
                }
                for rule, confidence in result.rule_confidences.items()
            ),
            key=lambda entry: entry["name"],
        ),
        "accepted": sorted(rule.name for rule in result.accepted_rules),
        "candidates_examined": result.candidates_examined,
    }


class TestDMineGolden:
    def test_dmine_g1_visit_rules(self, g1, visit_predicate, update_golden):
        """The diversified rule set mined from Fig. 2's G1 is frozen."""
        config = DMineConfig(
            k=3, d=2, sigma=1, num_workers=2, max_edges=2,
            max_extensions_per_rule=10, max_rules_per_round=20,
        )
        result = dmine(g1, visit_predicate, config)
        check_golden("dmine_g1_visit", _dmine_payload(result), update_golden)

    def test_dmine_g1_visit_unoptimized_same_rules(self, g1, visit_predicate, update_golden):
        """DMineno (all paper optimisations off) freezes to its own snapshot."""
        config = DMineConfig(
            k=3, d=2, sigma=1, num_workers=2, max_edges=2,
            max_extensions_per_rule=10, max_rules_per_round=20,
        ).without_optimizations()
        result = dmine(g1, visit_predicate, config)
        check_golden("dmine_g1_visit_unoptimized", _dmine_payload(result), update_golden)


class TestEIPGolden:
    @pytest.mark.parametrize("algorithm", ["match", "matchc", "disvf2"])
    def test_eip_g1_visit_rules(self, g1, g1_rules, update_golden, algorithm):
        """EIP over G1 with the paper's five visit rules is frozen per algorithm."""
        result = identify_entities(
            g1, g1_rules, eta=0.5, num_workers=2, algorithm=algorithm
        )
        check_golden(f"eip_g1_{algorithm}", _eip_payload(result), update_golden)

    def test_eip_ecuador_r2(self, g_ecuador, r2, update_golden):
        """The Example 7 identification (Shakira-album rule R2) is frozen."""
        result = identify_entities(
            g_ecuador, [r2], eta=0.5, num_workers=2, algorithm="match"
        )
        check_golden("eip_ecuador_r2", _eip_payload(result), update_golden)


class TestGoldenHarness:
    def test_missing_golden_fails_with_guidance(self, tmp_path):
        with pytest.raises(pytest.fail.Exception, match="--update-golden"):
            check_golden("never_written", {"a": 1}, update=False, directory=tmp_path)

    def test_update_writes_and_next_run_passes(self, tmp_path):
        payload = {"value": 42, "inf": _number(math.inf)}
        with pytest.raises(pytest.skip.Exception):
            check_golden("roundtrip", payload, update=True, directory=tmp_path)
        check_golden("roundtrip", payload, update=False, directory=tmp_path)
        with pytest.raises(AssertionError):
            check_golden("roundtrip", {"value": 43}, update=False, directory=tmp_path)
