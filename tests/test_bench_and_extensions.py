"""Tests for the benchmark harness and the multi-predicate mining helpers."""

import json

import pytest

from repro.bench import format_rows, print_series, rows_as_json, wall_speedups
from repro.bench.harness import (
    DMineRow,
    EIPRow,
    run_dmine_backends,
    run_dmine_config,
    run_eip_config,
)
from repro.bench.workloads import eip_workload, mining_workload, synthetic_mining_workload
from repro.datasets import most_frequent_predicates
from repro.mining import DMineConfig, dmine_auto, dmine_for_predicates


class TestReporting:
    def test_format_rows_aligns_columns(self):
        rows = [
            {"dataset": "pokec", "n": 2, "time": 1.5},
            {"dataset": "googleplus", "n": 16, "time": 0.25},
        ]
        text = format_rows(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "dataset" in lines[0]
        assert "googleplus" in lines[3]

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_format_rows_accepts_dataclasses(self):
        row = EIPRow(
            dataset="pokec", algorithm="match", parameter="n", value=4,
            simulated_parallel_time=0.5, wall_time=1.0, identified=10,
            candidates_examined=100,
        )
        assert "match" in format_rows([row])

    def test_print_series_smoke(self, capsys):
        print_series("demo", [{"a": 1}])
        captured = capsys.readouterr()
        assert "demo" in captured.out

    def test_wall_speedups(self):
        rows = [
            {"backend": "sequential", "wall_time": 2.0},
            {"backend": "processes", "wall_time": 0.5},
            {"backend": "threads", "wall_time": 0.0},
        ]
        speedups = wall_speedups(rows)
        assert speedups["sequential"] == pytest.approx(1.0)
        assert speedups["processes"] == pytest.approx(4.0)
        assert "threads" not in speedups  # zero wall time is dropped

    def test_wall_speedups_without_baseline(self):
        assert wall_speedups([{"backend": "processes", "wall_time": 1.0}]) == {}

    def test_rows_as_json_is_machine_readable(self):
        row = EIPRow(
            dataset="pokec", algorithm="match", parameter="backend", value="processes",
            simulated_parallel_time=0.5, wall_time=1.0, identified=10,
            candidates_examined=100, backend="processes", wall_speedup=1.7,
        )
        data = json.loads(rows_as_json("smoke_match", "a title", [row]))
        assert data["name"] == "smoke_match"
        assert data["rows"][0]["backend"] == "processes"
        assert data["rows"][0]["wall_speedup"] == 1.7


class TestWorkloads:
    def test_mining_workload_datasets(self):
        for dataset in ("pokec", "googleplus", "synthetic"):
            graph, predicate = mining_workload(dataset, scale=120 if dataset != "synthetic" else 300)
            assert graph.num_nodes > 0
            assert predicate.num_edges == 1

    def test_mining_workload_is_cached(self):
        first = mining_workload("pokec", scale=120)
        second = mining_workload("pokec", scale=120)
        assert first[0] is second[0]

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            mining_workload("twitter")

    def test_eip_workload_rules_share_predicate(self):
        graph, rules = eip_workload("pokec", num_rules=4, scale=120, seed=3)
        assert len(rules) == 4
        signatures = {(r.x_label, r.consequent_label, r.y_label) for r in rules}
        assert len(signatures) == 1

    def test_synthetic_workload_size(self):
        graph, predicate = synthetic_mining_workload(300, 900)
        assert graph.num_nodes == 300
        assert graph.num_edges == 900


class TestHarnessRunners:
    def test_run_dmine_config_row(self):
        graph, predicate = mining_workload("pokec", scale=120)
        row = run_dmine_config(
            "pokec", graph, predicate, num_workers=2, sigma=6,
            optimized=True, parameter="n", value=2,
            max_edges=1, max_extensions_per_rule=5, max_rules_per_round=10,
        )
        assert isinstance(row, DMineRow)
        assert row.algorithm == "DMine"
        assert row.simulated_parallel_time >= 0
        assert row.as_dict()["n"] == 2

    def test_run_eip_config_row(self):
        graph, rules = eip_workload("pokec", num_rules=3, scale=120, seed=3)
        row = run_eip_config(
            "pokec", graph, rules, num_workers=2, algorithm="match",
            parameter="n", value=2,
        )
        assert isinstance(row, EIPRow)
        assert row.identified >= 0
        assert row.as_dict()["algorithm"] == "match"

    def test_run_dmine_backends_annotates_speedup(self):
        graph, predicate = mining_workload("pokec", scale=120)
        rows = run_dmine_backends(
            "pokec", graph, predicate, num_workers=2, sigma=6,
            backends=["processes"],
            max_edges=1, max_extensions_per_rule=5, max_rules_per_round=10,
        )
        assert [row.backend for row in rows] == ["sequential", "processes"]
        # Same configuration on both backends must mine the same rules —
        # the fingerprint hashes rule structure + support + confidence.
        assert rows[0].fingerprint and rows[0].fingerprint == rows[1].fingerprint
        assert rows[0].rules_discovered == rows[1].rules_discovered
        assert rows[0].objective == pytest.approx(rows[1].objective)
        assert rows[0].wall_speedup == pytest.approx(1.0)
        assert rows[1].wall_speedup is None or rows[1].wall_speedup > 0


class TestMultiPredicateMining:
    def test_dmine_for_predicates(self, g1, visit_predicate):
        config = DMineConfig(
            k=2, d=1, sigma=1, num_workers=2, max_edges=1,
            max_extensions_per_rule=6, max_rules_per_round=10,
        )
        results = dmine_for_predicates(g1, [visit_predicate, visit_predicate], config)
        # Duplicate predicates are mined once.
        assert len(results) == 1
        assert results[visit_predicate].top_k

    def test_dmine_auto_uses_frequent_predicates(self, g1):
        config = DMineConfig(
            k=2, d=1, sigma=1, num_workers=2, max_edges=1,
            max_extensions_per_rule=5, max_rules_per_round=10,
        )
        results = dmine_auto(g1, config, top_predicates=2)
        assert len(results) == 2
        frequent = most_frequent_predicates(g1, top=2)
        assert set(results) == set(frequent)
