"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import _parse_predicate, build_parser, main


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "graph.json"
    exit_code = main(
        ["generate", "--kind", "pokec", "--users", "120", "--seed", "3", "--out", str(path)]
    )
    assert exit_code == 0
    return path


class TestParsing:
    def test_parse_predicate(self):
        predicate = _parse_predicate("user:like_book:personal development")
        assert predicate.label("x") == "user"
        assert predicate.label("y") == "personal development"
        assert predicate.edges()[0].label == "like_book"

    def test_parse_predicate_rejects_malformed(self):
        with pytest.raises(Exception):
            _parse_predicate("user:like_book")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_generate_writes_json(self, graph_file):
        assert graph_file.exists()
        assert '"label": "user"' in graph_file.read_text()

    def test_generate_synthetic(self, tmp_path):
        out = tmp_path / "syn.json"
        assert main(["generate", "--kind", "synthetic", "--users", "50", "--out", str(out)]) == 0
        assert out.exists()

    def test_mine_prints_rules(self, graph_file, capsys):
        exit_code = main(
            [
                "mine", str(graph_file),
                "--predicate", "user:like_book:personal development",
                "-k", "2", "-d", "1", "--sigma", "4", "--workers", "2", "--max-edges", "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "F(Lk)" in output
        assert "=> like_book(x, y)" in output

    def test_identify_prints_summary(self, graph_file, capsys):
        exit_code = main(
            [
                "identify", str(graph_file),
                "--predicate", "user:like_book:personal development",
                "--rules", "3", "--eta", "1.0", "--workers", "2", "--max-edges", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "potential customers" in output
        assert "first identified entities" in output

    def test_dmine_alias_with_process_backend(self, graph_file, capsys):
        exit_code = main(
            [
                "dmine", str(graph_file),
                "--predicate", "user:like_book:personal development",
                "-k", "2", "-d", "1", "--sigma", "4", "--workers", "2", "--max-edges", "1",
                "--backend", "processes", "--pool-size", "2",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "backend=processes" in output
        assert "F(Lk)" in output

    def test_match_alias_with_thread_backend(self, graph_file, capsys):
        exit_code = main(
            [
                "match", str(graph_file),
                "--predicate", "user:like_book:personal development",
                "--rules", "3", "--workers", "2", "--backend", "threads",
            ]
        )
        assert exit_code == 0
        assert "potential customers" in capsys.readouterr().out

    def test_backend_choice_is_validated(self, graph_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "mine", str(graph_file),
                    "--predicate", "user:like_book:personal development",
                    "--backend", "gpu",
                ]
            )

    def test_stream_maintains_and_verifies(self, graph_file, capsys):
        exit_code = main(
            [
                "stream", str(graph_file),
                "--predicate", "user:like_book:personal development",
                "--rules", "3",
                "--eta", "0.5",
                "--updates", "2",
                "--batch-size", "5",
                "--max-edges", "2",
                "--verify",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "streaming match over" in captured
        assert "identical]" in captured
        assert "repair wall over 2 batches" in captured
