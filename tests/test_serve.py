"""The :mod:`repro.serve` HTTP boundary, end to end over a loopback socket.

Exercises the serving contract of docs/serving.md with a real
:class:`~repro.serve.BackgroundServer`:

* session lifecycle (create from an inline graph document, list, info,
  delete) and error mapping (400/404/405/410);
* paginated ``/answer`` reads pinned to one ``Graph.version`` while
  ``/updates`` ticks land between pages;
* ``/subscribe`` deltas byte-identical to the set-difference of fresh
  recomputes on a mirror graph, plus the 410-resync path once the bounded
  history evicts the subscriber's version.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.exceptions import StreamError
from repro.graph.io import graph_to_dict
from repro.identification import EIPConfig
from repro.serve import BackgroundServer, RouteError, Router, ops_from_json
from repro.stream import UpdateBatch, UpdateOp, random_update_batch

RULES = 5
SEED = 3


def _call(method: str, url: str, body: dict | None = None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _call_text(url: str):
    """Raw GET returning (status, content-type, body text) — for /metrics."""
    with urllib.request.urlopen(url, timeout=30) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


def _workload(seed: int = SEED):
    graph = synthetic_graph(60, 200, num_node_labels=4, num_edge_labels=3, seed=seed)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(graph, predicate, count=RULES, max_pattern_edges=4, d=2, seed=seed)
    edge = predicate.edges()[0]
    predicate_text = (
        f"{predicate.label(predicate.x)}:{edge.label}:{predicate.label(predicate.y)}"
    )
    return graph, rules, predicate_text


def _session_body(graph, predicate_text, **extra):
    body = {
        "graph": graph_to_dict(graph),
        "predicate": predicate_text,
        "rules": RULES,
        "max_edges": 4,
        "d": 2,
        "seed": SEED,
        "eta": 0.1,
        "workers": 2,
    }
    body.update(extra)
    return body


@pytest.fixture(scope="module")
def server():
    with BackgroundServer() as running:
        yield running


class TestWireFormats:
    def test_ops_round_trip_through_json(self):
        batch = UpdateBatch.of(
            UpdateOp.add_node("n", "person", {"age": 3}),
            UpdateOp.relabel_node("n", "vip"),
            UpdateOp.add_edge("n", "m", "knows"),
            UpdateOp.remove_edge("n", "m", "knows"),
            UpdateOp.remove_node("n"),
        )
        documents = json.loads(json.dumps([op.as_dict() for op in batch.ops]))
        assert ops_from_json(documents).ops == batch.ops

    def test_ops_from_json_rejects_malformed(self):
        with pytest.raises(StreamError, match="must be a list"):
            ops_from_json({"kind": "add_node"})
        with pytest.raises(StreamError, match="unknown kind"):
            ops_from_json([{"kind": "explode"}])
        with pytest.raises(StreamError, match="missing field"):
            ops_from_json([{"kind": "add_edge", "source": "a"}])

    def test_router_params_and_errors(self):
        async def handler(request, **params):  # pragma: no cover - never awaited
            return params

        router = Router()
        router.add("GET", "/sessions/{session_id}/answer", handler)
        resolved, params, template = router.resolve("GET", "/sessions/s7/answer")
        assert resolved is handler and params == {"session_id": "s7"}
        assert template == "/sessions/{session_id}/answer"
        with pytest.raises(RouteError) as not_found:
            router.resolve("GET", "/nowhere")
        assert not_found.value.status == 404
        with pytest.raises(RouteError) as wrong_method:
            router.resolve("POST", "/sessions/s7/answer")
        assert wrong_method.value.status == 405


class TestSessionLifecycle:
    def test_create_info_list_delete(self, server):
        graph, rules, predicate_text = _workload()
        status, created = _call(
            "POST", f"{server.base_url}/sessions", _session_body(graph, predicate_text)
        )
        assert status == 201
        assert created["rules"] == [rule.name for rule in rules]
        sid = created["session"]
        status, info = _call("GET", f"{server.base_url}/sessions/{sid}")
        assert status == 200 and info["graph_version"] == created["graph_version"]
        status, listing = _call("GET", f"{server.base_url}/sessions")
        assert status == 200
        assert sid in [entry["session"] for entry in listing["sessions"]]
        status, closed = _call("DELETE", f"{server.base_url}/sessions/{sid}")
        assert status == 200 and closed == {"closed": sid}
        status, _ = _call("GET", f"{server.base_url}/sessions/{sid}")
        assert status == 404

    def test_error_mapping(self, server):
        base = server.base_url
        assert _call("GET", f"{base}/healthz")[0] == 200
        assert _call("GET", f"{base}/nowhere")[0] == 404
        assert _call("DELETE", f"{base}/healthz")[0] == 405
        # Malformed bodies and parameters map to 400 with a JSON error.
        status, doc = _call("POST", f"{base}/sessions", {"predicate": "a:b:c"})
        assert status == 400 and "graph" in doc["error"]
        graph, _rules, predicate_text = _workload()
        status, doc = _call(
            "POST", f"{base}/sessions", _session_body(graph, predicate_text, eta=-1)
        )
        assert status == 400 and "eta" in doc["error"]
        status, doc = _call(
            "POST", f"{base}/sessions", _session_body(graph, "not-a-predicate")
        )
        assert status == 400

    def test_malformed_http_gets_400(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as raw:
            raw.sendall(b"GIBBERISH\r\n\r\n")
            response = raw.recv(4096)
        assert response.startswith(b"HTTP/1.1 400")


class TestAnswerAndUpdates:
    def test_pagination_pinned_while_updates_tick(self, server):
        graph, _rules, predicate_text = _workload(seed=4)
        status, created = _call(
            "POST", f"{server.base_url}/sessions", _session_body(graph, predicate_text, seed=4)
        )
        assert status == 201
        url = f"{server.base_url}/sessions/{created['session']}"

        status, first = _call("GET", f"{url}/answer?limit=1")
        assert status == 200
        assert first["total"] >= 2, "workload must produce a multi-page answer"
        pinned = first["graph_version"]
        collected = list(first["entries"])
        cursor = first["next_cursor"]
        live = graph.copy()
        position = 0
        while cursor is not None:
            # Tick the graph between every page; the open pagination must
            # keep seeing the pinned version.
            batch = random_update_batch(live, size=3, seed=500 + position)
            status, tick = _call(
                "POST", f"{url}/updates", {"ops": [op.as_dict() for op in batch.ops]}
            )
            assert status == 200 and tick["graph_version"] > pinned
            batch.apply(live)
            position += 1
            status, page = _call("GET", f"{url}/answer?cursor={cursor}&limit=1")
            assert status == 200
            assert page["graph_version"] == pinned
            collected.extend(page["entries"])
            cursor = page["next_cursor"]
        assert len(collected) == first["total"]
        keys = [(entry["entity"], entry["rule_index"]) for entry in collected]
        assert keys == sorted(keys)
        # A fresh read reflects the ticks.
        status, head = _call("GET", f"{url}/answer?limit=1")
        assert head["graph_version"] > pinned
        _call("DELETE", url)

    def test_bad_cursor_and_bad_ops(self, server):
        graph, _rules, predicate_text = _workload(seed=12)
        _status, created = _call(
            "POST", f"{server.base_url}/sessions", _session_body(graph, predicate_text)
        )
        url = f"{server.base_url}/sessions/{created['session']}"
        assert _call("GET", f"{url}/answer?cursor=@@@")[0] == 400
        assert _call("GET", f"{url}/answer?limit=zero")[0] == 400
        assert _call("POST", f"{url}/updates", {"ops": [{"kind": "explode"}]})[0] == 400
        assert _call("POST", f"{url}/updates", {"not_ops": []})[0] == 400
        _call("DELETE", url)


class TestObservabilityEndpoints:
    def test_healthz_reports_residency(self, server):
        graph, _rules, predicate_text = _workload(seed=21)
        _status, created = _call(
            "POST", f"{server.base_url}/sessions", _session_body(graph, predicate_text)
        )
        url = f"{server.base_url}/sessions/{created['session']}"
        status, health = _call("GET", f"{server.base_url}/healthz")
        assert status == 200 and health["ok"] is True
        assert health["sessions"] >= 1
        assert health["resident_nodes"] > 0
        assert health["oldest_retained_version"] <= created["graph_version"]
        _call("DELETE", url)

    def test_metrics_scrape_prometheus_text(self, server):
        from repro.obs import parse_prometheus

        graph, _rules, predicate_text = _workload(seed=22)
        _status, created = _call(
            "POST", f"{server.base_url}/sessions", _session_body(graph, predicate_text)
        )
        sid = created["session"]
        url = f"{server.base_url}/sessions/{sid}"
        _call("GET", f"{url}/answer?limit=1")

        status, content_type, text = _call_text(f"{server.base_url}/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        samples = parse_prometheus(text)  # strict: malformed lines raise
        # Request counters label by route *template*, not the concrete path.
        routes = {
            labels["route"]
            for labels, _value in samples["repro_http_requests_total"]
        }
        assert "/sessions/{session_id}/answer" in routes
        assert "/sessions" in routes
        assert not any(sid in route for route in routes)
        assert "repro_http_request_seconds_bucket" in samples
        # Per-session gauges carry the session id as a label.
        gauge_sessions = {
            labels["session"]
            for labels, _value in samples.get("repro_session_batches_applied", [])
        }
        assert sid in gauge_sessions
        sessions_gauge = samples["repro_sessions"][0][1]
        assert sessions_gauge >= 1

        # Closed sessions disappear from the per-session families on the
        # next scrape (clear-then-set, no frozen series).
        _call("DELETE", url)
        _status, _content_type, text = _call_text(f"{server.base_url}/metrics")
        samples = parse_prometheus(text)
        gauge_sessions = {
            labels["session"]
            for labels, _value in samples.get("repro_session_batches_applied", [])
        }
        assert sid not in gauge_sessions

    def test_unmatched_requests_bound_route_cardinality(self, server):
        from repro.obs import parse_prometheus

        assert _call("GET", f"{server.base_url}/no/such/route-xyz")[0] == 404
        _status, _content_type, text = _call_text(f"{server.base_url}/metrics")
        samples = parse_prometheus(text)
        unmatched = [
            (labels, value)
            for labels, value in samples["repro_http_requests_total"]
            if labels["route"] == "unmatched"
        ]
        assert unmatched
        routes = {
            labels["route"]
            for labels, _value in samples["repro_http_requests_total"]
        }
        assert "/no/such/route-xyz" not in routes


class TestSubscriptions:
    def test_deltas_match_fresh_recomputes(self, server):
        graph, rules, predicate_text = _workload(seed=13)
        _status, created = _call(
            "POST", f"{server.base_url}/sessions", _session_body(graph, predicate_text, seed=13)
        )
        url = f"{server.base_url}/sessions/{created['session']}"
        assert created["rules"] == [rule.name for rule in rules]
        status, baseline = _call("GET", f"{url}/subscribe")
        assert status == 200 and baseline["deltas"] == []
        since = baseline["resume_from"]

        config = EIPConfig(eta=0.1, num_workers=2, seed=13)
        mirror = graph.copy()
        fresh_before = api.identify(mirror, rules, config)
        expected = []
        live = graph.copy()
        for position in range(3):
            batch = random_update_batch(live, size=6, seed=1300 + position)
            status, tick = _call(
                "POST", f"{url}/updates", {"ops": [op.as_dict() for op in batch.ops]}
            )
            assert status == 200
            batch.apply(live)
            batch.apply(mirror)
            fresh_after = api.identify(mirror, rules, config)
            expected.append(
                api.diff_results(
                    fresh_before, fresh_after, tick["base_version"], tick["graph_version"]
                ).as_dict()
            )
            fresh_before = fresh_after

        status, replay = _call("GET", f"{url}/subscribe?since={since}&timeout=5")
        assert status == 200
        assert replay["deltas"] == expected
        assert replay["resume_from"] == expected[-1]["version"]
        # Incremental consumption: resuming from the last seen version
        # yields nothing new (after the long-poll window).
        status, quiet = _call(
            "GET", f"{url}/subscribe?since={replay['resume_from']}&timeout=0.2"
        )
        assert status == 200 and quiet["deltas"] == []
        # Per-rule filter keeps only that rule's diff per tick.
        rule_name = created["rules"][0]
        status, filtered = _call(
            "GET", f"{url}/subscribe?since={since}&timeout=5&rule={rule_name}"
        )
        assert status == 200
        for doc, full in zip(filtered["deltas"], expected):
            assert set(doc["rules"]) <= {rule_name}
            assert doc["rules"] == {
                name: diff for name, diff in full["rules"].items() if name == rule_name
            }
        assert _call("GET", f"{url}/subscribe?since={since}&rule=missing")[0] == 404
        _call("DELETE", url)

    def test_evicted_history_maps_to_410_resync(self, server):
        graph, _rules, predicate_text = _workload(seed=14)
        _status, created = _call(
            "POST",
            f"{server.base_url}/sessions",
            _session_body(graph, predicate_text, seed=14, history_limit=1),
        )
        url = f"{server.base_url}/sessions/{created['session']}"
        since = created["graph_version"]
        live = graph.copy()
        for position in range(3):
            batch = random_update_batch(live, size=4, seed=1400 + position)
            assert (
                _call(
                    "POST", f"{url}/updates", {"ops": [op.as_dict() for op in batch.ops]}
                )[0]
                == 200
            )
            batch.apply(live)
        status, gone = _call("GET", f"{url}/subscribe?since={since}&timeout=1")
        assert status == 410
        assert gone["resync"] is True
        _call("DELETE", url)


class TestKeepAliveConnections:
    def test_one_socket_serves_many_requests(self, server):
        import http.client
        from urllib.parse import urlsplit

        split = urlsplit(server.base_url)
        connection = http.client.HTTPConnection(split.hostname, split.port, timeout=30)
        try:
            sockets = []
            for _ in range(3):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                assert response.headers.get("Connection") == "keep-alive"
                assert json.loads(response.read().decode("utf-8"))["ok"] is True
                sockets.append(connection.sock)
            assert sockets[0] is sockets[1] is sockets[2], "connection was not reused"
        finally:
            connection.close()

    def test_connection_close_is_honoured(self, server):
        import http.client
        from urllib.parse import urlsplit

        split = urlsplit(server.base_url)
        connection = http.client.HTTPConnection(split.hostname, split.port, timeout=30)
        try:
            connection.request("GET", "/healthz", headers={"Connection": "close"})
            response = connection.getresponse()
            assert response.status == 200
            assert response.headers.get("Connection") == "close"
            response.read()
        finally:
            connection.close()


class TestSharedCores:
    def test_shared_core_fan_out_and_close_one_keep_one(self, server, tmp_path):
        from repro.graph.io import save_graph_json

        graph, _rules, predicate_text = _workload(seed=31)
        path = tmp_path / "shared-graph.json"
        save_graph_json(graph, path)
        base = {
            "graph_path": str(path),
            "predicate": predicate_text,
            "max_edges": 4,
            "d": 2,
            "seed": 31,
            "eta": 0.1,
            "workers": 2,
        }
        status, alpha = _call(
            "POST",
            f"{server.base_url}/sessions",
            {**base, "rules": RULES, "tenant": "alpha"},
        )
        assert status == 201
        assert alpha["tenant"] == "alpha" and alpha["shared_core"] is True
        assert alpha["admission"]["cold_start"] is True

        # Same seed, smaller count: beta's Σ is a prefix of alpha's, so the
        # admission is fully warm — zero novel rules, zero backfill.
        status, beta = _call(
            "POST",
            f"{server.base_url}/sessions",
            {**base, "rules": 3, "tenant": "beta"},
        )
        assert status == 201
        assert beta["admission"]["cold_start"] is False
        assert beta["admission"]["novel_rules"] == 0
        assert beta["admission"]["shared_rules"] == 3
        assert beta["admission"]["backfill_centers"] == 0

        alpha_url = f"{server.base_url}/sessions/{alpha['session']}"
        beta_url = f"{server.base_url}/sessions/{beta['session']}"
        _status, health = _call("GET", f"{server.base_url}/healthz")
        assert health["shared_cores"] == 1

        # One tick through alpha advances beta in the same version step.
        batch = random_update_batch(graph.copy(), size=4, seed=77)
        status, tick = _call(
            "POST", f"{alpha_url}/updates", {"ops": [op.as_dict() for op in batch.ops]}
        )
        assert status == 200
        _status, beta_info = _call("GET", beta_url)
        assert beta_info["graph_version"] == tick["graph_version"]
        assert beta_info["batches_applied"] == 1

        _status, _ctype, text = _call_text(f"{server.base_url}/metrics")
        assert "repro_tenant_session_shared_rules" in text
        assert "repro_shared_cores 1" in text

        # Closing alpha keeps beta's projection live on the shared core.
        assert _call("DELETE", alpha_url)[0] == 200
        status, page = _call("GET", f"{beta_url}/answer?limit=5")
        assert status == 200 and page["graph_version"] == tick["graph_version"]
        _status, health = _call("GET", f"{server.base_url}/healthz")
        assert health["shared_cores"] == 1

        # The last tenant's exit releases the core itself.
        assert _call("DELETE", beta_url)[0] == 200
        _status, health = _call("GET", f"{server.base_url}/healthz")
        assert health["shared_cores"] == 0

    def test_inline_graph_sessions_stay_private(self, server):
        graph, _rules, predicate_text = _workload(seed=32)
        _status, created = _call(
            "POST", f"{server.base_url}/sessions", _session_body(graph, predicate_text)
        )
        assert created["shared_core"] is False
        assert "admission" not in created
        _call("DELETE", f"{server.base_url}/sessions/{created['session']}")
