"""Unit tests of the fragment lifecycle subsystem (repro.partition.lifecycle).

Covers the configuration surface (StreamConfig env/constructor overrides,
per-graph delta-log sizing, per-index rebuild fraction), the checkpoint
value type (capture/build/install/save/load), the worker catch-up protocol,
the coordinator-side FragmentManager (refcount shedding, compaction,
migration planning) and the StreamingIdentifier save/restore round trip.
The randomized equivalence sweeps stay in tests/test_stream_equivalence.py.
"""

from __future__ import annotations

import pickle

import pytest

from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.exceptions import GraphError, StreamError
from repro.graph import FragmentIndex, Graph
from repro.partition import Fragment, partition_graph
from repro.partition.lifecycle import (
    APPLIED_SEQUENCE_KEY,
    FragmentCheckpoint,
    FragmentLease,
    FragmentManager,
    FragmentUpdate,
    catch_up,
)
from repro.parallel.worker import WorkerContext
from repro.stream import (
    StreamConfig,
    StreamingIdentifier,
    UpdateBatch,
    UpdateOp,
    random_update_batch,
)


def toy_graph() -> Graph:
    g = Graph(name="toy")
    g.add_node("alice", "cust")
    g.add_node("bob", "cust")
    g.add_node("carol", "cust")
    g.add_node("cafe", "restaurant")
    g.add_edge("alice", "bob", "friend")
    g.add_edge("bob", "carol", "friend")
    g.add_edge("alice", "cafe", "visit")
    g.add_edge("bob", "cafe", "visit")
    return g


class TestStreamConfig:
    def test_defaults_match_module_constants(self):
        from repro.graph.graph import DELTA_LOG_SIZE
        from repro.graph.index import DELTA_REBUILD_FRACTION

        config = StreamConfig()
        assert config.delta_log_size == DELTA_LOG_SIZE
        assert config.delta_rebuild_fraction == DELTA_REBUILD_FRACTION
        assert config.checkpoint_log_fraction == 0.5
        assert config.rebalance_skew == 0.6
        assert config.state_dir is None

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELTA_LOG_SIZE", "7")
        monkeypatch.setenv("REPRO_DELTA_REBUILD_FRACTION", "0.5")
        monkeypatch.setenv("REPRO_CHECKPOINT_LOG_FRACTION", "0.125")
        monkeypatch.setenv("REPRO_REBALANCE_SKEW", "0.9")
        monkeypatch.setenv("REPRO_STATE_DIR", "/tmp/somewhere")
        config = StreamConfig()
        assert config.delta_log_size == 7
        assert config.delta_rebuild_fraction == 0.5
        assert config.checkpoint_log_fraction == 0.125
        assert config.rebalance_skew == 0.9
        assert str(config.state_dir) == "/tmp/somewhere"
        # Constructed graphs pick the env default up too.
        assert Graph().delta_log_size == 7
        assert FragmentIndex(toy_graph()).rebuild_fraction == 0.5

    def test_validation(self):
        with pytest.raises(StreamError):
            StreamConfig(delta_log_size=0)
        with pytest.raises(StreamError):
            StreamConfig(delta_rebuild_fraction=1.5)
        with pytest.raises(StreamError):
            StreamConfig(checkpoint_log_fraction=0.0)
        with pytest.raises(StreamError):
            StreamConfig(rebalance_skew=-0.1)

    def test_graph_delta_log_configuration(self):
        g = toy_graph()
        g.configure_delta_log(3)
        base = g.version
        for serial in range(5):
            g.add_node(f"n{serial}", "cust")
        assert g.delta_log_size == 3
        assert g.deltas_since(base) is None  # outran the shrunk log
        assert g.deltas_since(g.version - 3) is not None
        # copy() and induced_subgraph() propagate the configured size.
        assert g.copy().delta_log_size == 3
        assert g.induced_subgraph(["alice", "bob"]).delta_log_size == 3
        with pytest.raises(GraphError):
            g.configure_delta_log(0)

    def test_index_rebuild_fraction_argument(self):
        g = synthetic_graph(40, 120, num_node_labels=4, num_edge_labels=3, seed=1)
        eager = FragmentIndex(g, rebuild_fraction=0.0)
        g.add_node("fresh", "L0")
        eager.refresh()
        assert eager.statistics.builds == 2  # fraction 0: always rebuild
        patient = FragmentIndex(g, rebuild_fraction=1.0)
        with g.batch_update() as tx:
            for node in sorted(g.nodes(), key=str)[:30]:
                tx.relabel_node(node, "L1")
        patient.refresh()
        assert patient.statistics.builds == 1  # fraction 1: always patch


class TestFragmentCheckpoint:
    def _manager(self, seed=0, num_fragments=2, config=None):
        graph = synthetic_graph(80, 240, num_node_labels=4, num_edge_labels=3, seed=seed)
        label = sorted(graph.node_labels())[0]
        centers = graph.nodes_with_label(label)
        fragments = partition_graph(graph, num_fragments, centers=centers, d=2, seed=0)
        manager = FragmentManager(
            graph, fragments, 2, label, config or StreamConfig()
        )
        return graph, fragments, manager

    def test_capture_matches_resident_fragment(self):
        graph, fragments, manager = self._manager()
        fragment = fragments[0]
        checkpoint = FragmentCheckpoint.capture(
            graph,
            set(fragment.graph.nodes()),
            fragment.owned_centers,
            fragment.index,
            sequence=0,
            name=fragment.graph.name,
        )
        rebuilt = checkpoint.build_fragment()
        assert rebuilt.graph.structure_equal(fragment.graph)
        assert rebuilt.owned_centers == fragment.owned_centers
        assert rebuilt.sequence == 0

    def test_save_load_roundtrip(self, tmp_path):
        graph, fragments, _manager = self._manager()
        fragment = fragments[0]
        checkpoint = FragmentCheckpoint.capture(
            graph,
            set(fragment.graph.nodes()),
            fragment.owned_centers,
            fragment.index,
            sequence=4,
            name="ckpt",
        )
        path = checkpoint.save(tmp_path / "deep" / "f0.ckpt")
        loaded = FragmentCheckpoint.load(path)
        assert loaded == checkpoint
        bogus = tmp_path / "bogus.ckpt"
        bogus.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(StreamError):
            FragmentCheckpoint.load(bogus)

    def test_catch_up_installs_only_when_behind(self):
        graph, fragments, manager = self._manager()
        fragment = fragments[0]
        checkpoint = FragmentCheckpoint.capture(
            graph,
            set(fragment.graph.nodes()),
            fragment.owned_centers,
            fragment.index,
            sequence=5,
            name=fragment.graph.name,
        )
        # A context already ahead of the base keeps its graph object.
        ahead = WorkerContext(fragment)
        ahead.state[APPLIED_SEQUENCE_KEY] = 9
        resident = fragment.graph
        catch_up(ahead, FragmentLease(base_sequence=5, checkpoint=checkpoint))
        assert fragment.graph is resident
        # A cold context (applied 0) installs the base: new graph object.
        cold = WorkerContext(fragment)
        cold.state.clear()
        catch_up(cold, FragmentLease(base_sequence=5, checkpoint=checkpoint))
        assert fragment.graph is not resident
        assert fragment.graph.structure_equal(resident)
        assert cold.state[APPLIED_SEQUENCE_KEY] == 5

    def test_catch_up_requires_a_checkpoint_reference(self):
        _graph, fragments, _manager = self._manager()
        context = WorkerContext(fragments[0])
        with pytest.raises(StreamError):
            catch_up(context, FragmentLease(base_sequence=3))

    def test_catch_up_replays_tail_and_applies_shed(self):
        g = toy_graph()
        fragment_graph = g.induced_subgraph(
            ["alice", "bob", "carol", "cafe"], name="frag"
        )
        fragment = Fragment(index=0, graph=fragment_graph, owned_centers={"alice"})
        context = WorkerContext(fragment)
        update = FragmentUpdate(
            sequence=1,
            remove_edges=(("bob", "carol", "friend"),),
            shed=("carol",),
            own_add=("bob",),
        )
        catch_up(context, FragmentLease(updates=(update,)))
        assert not fragment.graph.has_node("carol")
        assert fragment.owned_centers == {"alice", "bob"}
        assert context.state[APPLIED_SEQUENCE_KEY] == 1
        assert update.weight == 2
        assert update.mutates


class TestFragmentManager:
    def _streaming(self, config=None, seed=3, num_workers=3, **overrides):
        graph = synthetic_graph(
            120, 360, num_node_labels=5, num_edge_labels=3, seed=seed
        )
        predicate = most_frequent_predicates(graph, top=1)[0]
        rules = generate_gpars(
            graph, predicate, count=3, max_pattern_edges=3, d=2, seed=seed
        )
        identifier = StreamingIdentifier(
            graph,
            rules,
            eta=0.5,
            num_workers=num_workers,
            stream_config=config,
            **overrides,
        )
        return graph, rules, identifier

    def test_initial_membership_equals_refcounted_balls(self):
        graph, _rules, identifier = self._streaming()
        with identifier:
            manager = identifier.manager
            for fragment in identifier.fragments:
                assert manager.node_set(fragment.index) == frozenset(
                    fragment.graph.nodes()
                )
                refcounts = manager._refcounts[fragment.index]
                assert set(refcounts) == set(fragment.graph.nodes())
                assert all(count > 0 for count in refcounts.values())

    def test_deletion_sheds_resident_nodes_and_index_entries(self):
        graph, _rules, identifier = self._streaming(
            config=StreamConfig(rebalance_skew=1.0)
        )
        with identifier:
            shed_total = 0
            for position in range(6):
                batch = random_update_batch(
                    graph, size=9, seed=70 + position, deletion_bias=0.6
                )
                report = identifier.apply(batch)
                shed_total += report.shed_nodes
                for fragment in identifier.fragments:
                    members = identifier.manager.node_set(fragment.index)
                    # Resident copy tracks the managed membership exactly...
                    assert frozenset(fragment.graph.nodes()) == members
                    # ...and every member is covered by some owned ball.
                    refcounts = identifier.manager._refcounts[fragment.index]
                    assert set(refcounts) == set(members)
            assert shed_total > 0, "deletion churn must shed uncovered nodes"
            fresh = identifier.recompute()
            assert fresh.identified == identifier.result.identified
            assert fresh.rule_confidences == identifier.result.rule_confidences

    def test_losing_every_centre_empties_the_fragment(self):
        g = Graph(name="tiny")
        g.add_node("c1", "cust")
        g.add_node("m1", "shop")
        g.add_edge("c1", "m1", "visit")
        fragments = partition_graph(g, 1, centers={"c1"}, d=1, seed=0)
        manager = FragmentManager(g, fragments, 1, "cust", StreamConfig())
        batch = UpdateBatch.of(UpdateOp.relabel_node("c1", "ex-cust"))
        delta = batch.apply(g)
        from repro.graph.neighborhood import multi_source_ball

        plan = manager.derive_batch(delta, multi_source_ball(g, delta.touched, 1))
        update = plan.updates[0]
        assert update.own_remove == ("c1",)
        assert set(update.shed) == {"c1", "m1"}  # nobody's ball covers them now
        assert manager.node_set(0) == frozenset()

    def test_compaction_truncates_log_and_serves_leases(self):
        config = StreamConfig(checkpoint_log_fraction=0.01, rebalance_skew=1.0)
        graph, _rules, identifier = self._streaming(config=config)
        with identifier:
            compacted = 0
            for position in range(4):
                report = identifier.apply(
                    random_update_batch(graph, size=8, seed=40 + position)
                )
                compacted += report.compacted_fragments
            assert compacted > 0
            manager = identifier.manager
            for fragment in identifier.fragments:
                lease = manager.lease(fragment.index)
                if lease.base_sequence:
                    assert lease.checkpoint is not None
                    assert lease.checkpoint.sequence == lease.base_sequence
                    assert all(
                        update.sequence > lease.base_sequence
                        for update in lease.updates
                    )
            fresh = identifier.recompute()
            assert fresh.identified == identifier.result.identified

    def test_state_dir_checkpoints_go_to_disk(self, tmp_path):
        config = StreamConfig(
            checkpoint_log_fraction=0.01,
            rebalance_skew=1.0,
            state_dir=tmp_path / "state",
        )
        graph, _rules, identifier = self._streaming(config=config)
        with identifier:
            for position in range(4):
                identifier.apply(random_update_batch(graph, size=8, seed=60 + position))
            manager = identifier.manager
            on_disk = [
                manager.lease(fragment.index).checkpoint_path
                for fragment in identifier.fragments
                if manager.lease(fragment.index).base_sequence
            ]
            assert on_disk and all(path is not None for path in on_disk)
            assert list((tmp_path / "state").glob("fragment-*.ckpt"))
            # Inline payloads stay checkpoint-free (paths travel instead).
            assert all(
                manager.lease(fragment.index).checkpoint is None
                for fragment in identifier.fragments
            )
            fresh = identifier.recompute()
            assert fresh.identified == identifier.result.identified

    def test_migration_splices_without_reverification(self):
        config = StreamConfig(rebalance_skew=0.3, checkpoint_log_fraction=100.0)
        graph, _rules, identifier = self._streaming(
            config=config, seed=5, num_workers=4
        )
        with identifier:
            # Collapse one fragment's ownership: relabel all but one of its
            # centres away, so the remaining fragments' loads tower over it
            # and the next batches must migrate quiescent centres into it.
            manager = identifier.manager
            victim = identifier.fragments[0].index
            doomed = sorted(manager.owned_centers(victim), key=str)[1:]
            identifier.apply(
                UpdateBatch.of(
                    *(UpdateOp.relabel_node(center, "retired") for center in doomed)
                )
            )
            # Batches touching only a far-away fresh node keep every centre
            # quiescent (the affected region is just that node), so the
            # skew-triggered migration fires deterministically regardless of
            # hash seed; random churn batches then exercise the mixed case.
            migrated = 0
            for position in range(4):
                report = identifier.apply(
                    UpdateBatch.of(UpdateOp.add_node(f"far-{position}", "offside"))
                )
                migrated += report.migrated_centers
                fresh = identifier.recompute()
                assert fresh.identified == identifier.result.identified
                assert fresh.rule_confidences == identifier.result.rule_confidences
            assert migrated > 0, "collapsed ownership must trigger migration"
            for position in range(3):
                identifier.apply(
                    random_update_batch(
                        graph, size=6, seed=300 + position, deletion_bias=0.3
                    )
                )
                fresh = identifier.recompute()
                assert fresh.identified == identifier.result.identified
                assert fresh.rule_confidences == identifier.result.rule_confidences
            # Ownership stayed disjoint and complete.
            owned = [
                identifier.manager.owned_centers(fragment.index)
                for fragment in identifier.fragments
            ]
            for i, left in enumerate(owned):
                for right in owned[i + 1 :]:
                    assert not (left & right)
            assert set.union(*owned) == set(identifier.manager._owner)

    def test_rebalance_disabled_at_skew_one(self):
        config = StreamConfig(rebalance_skew=1.0)
        graph, _rules, identifier = self._streaming(config=config, seed=5, num_workers=4)
        with identifier:
            for position in range(4):
                report = identifier.apply(
                    random_update_batch(graph, size=10, seed=300 + position)
                )
                assert report.migrated_centers == 0


class TestSaveRestore:
    def _identifier(self, **overrides):
        graph = synthetic_graph(100, 300, num_node_labels=5, num_edge_labels=3, seed=8)
        predicate = most_frequent_predicates(graph, top=1)[0]
        rules = generate_gpars(graph, predicate, count=3, max_pattern_edges=3, d=2, seed=8)
        return graph, StreamingIdentifier(
            graph, rules, eta=0.5, num_workers=2, **overrides
        )

    @staticmethod
    def _fingerprint(result):
        return (
            sorted(map(str, result.identified)),
            sorted(
                (rule.name, confidence)
                for rule, confidence in result.rule_confidences.items()
            ),
        )

    def test_roundtrip_is_byte_identical_and_resumable(self, tmp_path):
        graph, identifier = self._identifier(
            stream_config=StreamConfig(checkpoint_log_fraction=0.05)
        )
        with identifier:
            for position in range(4):
                identifier.apply(random_update_batch(graph, size=7, seed=position))
            expected = self._fingerprint(identifier.result)
            path = identifier.save_state(tmp_path / "state.pkl")
        with StreamingIdentifier.restore(path) as restored:
            assert self._fingerprint(restored.result) == expected
            restored.apply(random_update_batch(restored.graph, size=7, seed=99))
            fresh = restored.recompute()
            assert self._fingerprint(restored.result) == self._fingerprint(fresh)

    def test_restore_onto_other_backends(self, tmp_path):
        graph, identifier = self._identifier()
        with identifier:
            identifier.apply(random_update_batch(graph, size=7, seed=1))
            expected = self._fingerprint(identifier.result)
            path = identifier.save_state(tmp_path / "state.pkl")
        for backend in ("threads", "processes"):
            with StreamingIdentifier.restore(
                path, backend=backend, executor_workers=2
            ) as restored:
                assert restored.config.backend == backend
                assert self._fingerprint(restored.result) == expected
                restored.apply(random_update_batch(restored.graph, size=7, seed=55))
                fresh = restored.recompute()
                assert self._fingerprint(restored.result) == self._fingerprint(fresh)

    def test_save_state_needs_a_destination(self):
        _graph, identifier = self._identifier()
        with identifier:
            with pytest.raises(StreamError):
                identifier.save_state()  # no path, no state_dir

    def test_process_backend_exports_stream_config_env(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_DELTA_REBUILD_FRACTION", raising=False)
        monkeypatch.delenv("REPRO_DELTA_LOG_SIZE", raising=False)
        graph, identifier = self._identifier(
            backend="processes",
            executor_workers=2,
            stream_config=StreamConfig(delta_rebuild_fraction=0.9, delta_log_size=48),
        )
        with identifier:
            # Pool workers resolve their index thresholds from the
            # environment; a programmatic override must land there before
            # the pool starts.
            assert os.environ["REPRO_DELTA_REBUILD_FRACTION"] == "0.9"
            assert os.environ["REPRO_DELTA_LOG_SIZE"] == "48"
            identifier.apply(random_update_batch(graph, size=5, seed=2))
            fresh = identifier.recompute()
            assert fresh.identified == identifier.result.identified

    def test_restore_keeps_serving_on_disk_bases_and_reclaims_them(self, tmp_path):
        state_dir = tmp_path / "state"
        config = StreamConfig(
            checkpoint_log_fraction=0.01, rebalance_skew=1.0, state_dir=state_dir
        )
        graph, identifier = self._identifier(stream_config=config)
        with identifier:
            for position in range(3):
                identifier.apply(random_update_batch(graph, size=8, seed=position))
            path = identifier.save_state(tmp_path / "run.pkl")
        before_files = set(state_dir.glob("fragment-*.ckpt"))
        assert before_files
        with StreamingIdentifier.restore(path) as restored:
            manager = restored.manager
            # Existing on-disk bases keep serving leases after a restore...
            assert any(
                manager.lease(fragment.index).checkpoint_path is not None
                for fragment in restored.fragments
            )
            for position in range(3):
                restored.apply(
                    random_update_batch(restored.graph, size=8, seed=50 + position)
                )
            fresh = restored.recompute()
            assert fresh.identified == restored.result.identified
        # ...and later compactions reclaim the pre-restore generation
        # instead of orphaning it.
        after_files = set(state_dir.glob("fragment-*.ckpt"))
        assert after_files != before_files
        assert len(after_files) <= len(before_files) + len(restored.fragments)
        assert before_files - after_files, "old checkpoint files were never unlinked"

    def test_save_state_defaults_to_state_dir(self, tmp_path):
        graph, identifier = self._identifier(
            stream_config=StreamConfig(state_dir=tmp_path)
        )
        with identifier:
            path = identifier.save_state()
        assert path == tmp_path / "stream-state.pkl"
        with StreamingIdentifier.restore(path) as restored:
            restored.result


class TestDeletionBiasSampling:
    def test_bias_zero_is_byte_identical_to_historical_sampler(self):
        for seed in range(5):
            g1 = synthetic_graph(60, 180, num_node_labels=4, num_edge_labels=3, seed=seed)
            g2 = g1.copy()
            plain = random_update_batch(g1, size=7, seed=seed)
            biased = random_update_batch(g2, size=7, seed=seed, deletion_bias=0.0)
            assert plain == biased

    def test_bias_one_only_removes(self):
        g = synthetic_graph(60, 180, num_node_labels=4, num_edge_labels=3, seed=2)
        batch = random_update_batch(g, size=10, seed=3, deletion_bias=1.0)
        assert all(op.kind in ("remove_edge", "remove_node") for op in batch)
        batch.apply(g)  # applies cleanly

    def test_bias_validation(self):
        with pytest.raises(StreamError):
            random_update_batch(toy_graph(), size=2, deletion_bias=1.5)


class TestMeasuredCostRebalance:
    """record_round_timing: measured worker times steer migration planning."""

    def _manager(self, **config_overrides):
        graph = synthetic_graph(120, 360, num_node_labels=5, num_edge_labels=3, seed=9)
        label = max(graph.node_label_counts(), key=lambda l: (graph.node_label_counts()[l], l))
        centers = set(graph.nodes_with_label(label))
        fragments = partition_graph(graph, 2, centers=centers, d=2, seed=0)
        manager = FragmentManager(
            graph, fragments, 2, label, StreamConfig(**config_overrides)
        )
        return graph, manager

    def test_factors_default_to_neutral(self):
        _graph, manager = self._manager()
        for fragment in manager.fragments:
            assert manager.cost_factor(fragment.index) == 1.0
            assert manager.effective_load(fragment.index) == manager.fragment_load(
                fragment.index
            )

    def test_uniform_per_node_cost_learns_no_skew(self):
        _graph, manager = self._manager()
        # Seconds proportional to load: per-node cost identical everywhere,
        # so a uniformly fast or slow machine must not tilt placement.
        manager.record_round_timing(
            {
                fragment.index: 0.004 * manager.fragment_load(fragment.index)
                for fragment in manager.fragments
            }
        )
        for fragment in manager.fragments:
            assert manager.cost_factor(fragment.index) == pytest.approx(1.0)

    def test_skewed_times_fold_in_with_smoothing(self):
        _graph, manager = self._manager()
        slow, fast = (fragment.index for fragment in manager.fragments[:2])
        seconds = {
            slow: 0.012 * manager.fragment_load(slow),
            fast: 0.004 * manager.fragment_load(fast),
        }
        manager.record_round_timing(seconds)
        first = manager.cost_factor(slow)
        assert first > 1.0 > manager.cost_factor(fast)
        assert manager.effective_load(slow) == pytest.approx(
            manager.fragment_load(slow) * first
        )
        # A second identical round moves the factor further toward the
        # observed ratio (exponential smoothing, COST_SMOOTHING=0.5).
        manager.record_round_timing(seconds)
        second = manager.cost_factor(slow)
        observed = 2 * first - 1.0  # first = (1 + observed) / 2
        assert first < second <= observed + 1e-9
        # Unknown fragments and negative readings are ignored, not folded.
        before = manager.cost_factor(slow)
        manager.record_round_timing({slow: -1.0, 999: 5.0})
        assert manager.cost_factor(slow) == before

    def test_cost_skew_alone_triggers_migration_planning(self):
        _graph, manager = self._manager(rebalance_skew=0.3)
        assert manager._plan_migrations(set()) == []  # node counts balanced
        slow = max(
            (fragment.index for fragment in manager.fragments),
            key=lambda index: (manager.fragment_load(index), index),
        )
        for _ in range(6):  # drive the factor far above the skew threshold
            manager.record_round_timing(
                {
                    fragment.index: (0.02 if fragment.index == slow else 0.004)
                    * manager.fragment_load(fragment.index)
                    for fragment in manager.fragments
                }
            )
        moves = manager._plan_migrations(set())
        assert moves, "measured cost skew alone must trigger rebalancing"
        assert all(src == slow for _center, src, _dst in moves)

    def test_cost_factors_survive_state_roundtrip(self):
        graph, manager = self._manager()
        slow = manager.fragments[0].index
        manager.record_round_timing(
            {
                fragment.index: (0.02 if fragment.index == slow else 0.004)
                * manager.fragment_load(fragment.index)
                for fragment in manager.fragments
            }
        )
        state = manager.state_dict()
        assert state["cost_factors"] == manager._cost_factors
        revived = FragmentManager.from_state(graph, state, manager.config)
        for fragment in manager.fragments:
            assert revived.cost_factor(fragment.index) == manager.cost_factor(
                fragment.index
            )
        # Checkpoints that predate the measured-cost policy restore neutral.
        del state["cost_factors"]
        legacy = FragmentManager.from_state(graph, state, manager.config)
        for fragment in manager.fragments:
            assert legacy.cost_factor(fragment.index) == 1.0

    def test_sub_noise_floor_rounds_are_discarded(self):
        _graph, manager = self._manager()
        manager.record_round_timing(
            {fragment.index: 1e-6 for fragment in manager.fragments}
        )
        # Microsecond rounds are scheduler jitter, not signal: factors stay
        # neutral, so toy-scale runs keep the deterministic node-count policy.
        assert manager._cost_factors == {}
        for fragment in manager.fragments:
            assert manager.cost_factor(fragment.index) == 1.0

    def test_streaming_rounds_feed_the_cost_factors(self, monkeypatch):
        graph = synthetic_graph(120, 360, num_node_labels=5, num_edge_labels=3, seed=3)
        predicate = most_frequent_predicates(graph, top=1)[0]
        rules = generate_gpars(graph, predicate, count=3, max_pattern_edges=3, d=2, seed=3)
        recorded = []
        original = FragmentManager.record_round_timing
        monkeypatch.setattr(
            FragmentManager,
            "record_round_timing",
            lambda self, seconds: (recorded.append(dict(seconds)), original(self, seconds))[1],
        )
        with StreamingIdentifier(graph, rules, eta=0.5, num_workers=3) as identifier:
            identifier.apply(random_update_batch(graph, size=6, seed=11))
            # Every round reports one measured time per fragment...
            assert recorded
            fragment_indexes = {fragment.index for fragment in identifier.fragments}
            for seconds in recorded:
                assert set(seconds) == fragment_indexes
                assert all(value >= 0 for value in seconds.values())
            # ...but toy rounds sit under the noise floor, so placement
            # still follows pure node counts here (see the test above).
            assert all(
                factor > 0 for factor in identifier.manager._cost_factors.values()
            )
