"""Tests for graph fragmentation and the BSP runtime."""

import pytest

from repro.exceptions import ExecutorError, PartitionError, WorkerError
from repro.graph import ball
from repro.parallel import (
    BSPRuntime,
    RuleMessage,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
    WorkerTask,
)
from repro.partition import fragmentation_report, partition_graph


def _num_nodes(context, payload):
    """Module-level worker: node count of the fragment (payload unused)."""
    return context.fragment.graph.num_nodes


def _num_edges(context, payload):
    return context.fragment.graph.num_edges


def _echo_payload(context, payload):
    return (context.fragment.index, payload)


def _boom(context, payload):
    raise ValueError("boom")


class TestPartitioner:
    def test_every_center_owned_exactly_once(self, g1):
        centers = g1.nodes_with_label("cust")
        fragments = partition_graph(g1, 3, centers=centers, d=2, seed=0)
        owned = [node for fragment in fragments for node in fragment.owned_centers]
        assert sorted(owned) == sorted(centers)
        assert len(owned) == len(set(owned))

    def test_d_ball_preserved_in_owning_fragment(self, g1):
        """The defining property: Gd(vx) lives inside vx's fragment."""
        centers = g1.nodes_with_label("cust")
        for d in (1, 2):
            fragments = partition_graph(g1, 3, centers=centers, d=d, seed=0)
            for fragment in fragments:
                for center in fragment.owned_centers:
                    for node in ball(g1, center, d):
                        assert fragment.graph.has_node(node)

    def test_fragment_edges_are_graph_edges(self, g1):
        fragments = partition_graph(g1, 2, centers=g1.nodes_with_label("cust"), d=1, seed=0)
        for fragment in fragments:
            for edge in fragment.graph.edges():
                assert g1.has_edge(edge.source, edge.target, edge.label)

    def test_requested_number_of_fragments(self, g1):
        fragments = partition_graph(g1, 5, centers=g1.nodes_with_label("cust"), d=1, seed=0)
        assert len(fragments) == 5

    def test_more_fragments_than_centers(self, g1):
        fragments = partition_graph(g1, 10, centers=["cust1"], d=1, seed=0)
        assert len(fragments) == 10
        assert sum(len(fragment.owned_centers) for fragment in fragments) == 1

    def test_invalid_arguments(self, g1):
        with pytest.raises(PartitionError):
            partition_graph(g1, 0, centers=["cust1"], d=1)
        with pytest.raises(PartitionError):
            partition_graph(g1, 2, centers=["cust1"], d=-1)
        with pytest.raises(PartitionError):
            partition_graph(g1, 2, centers=["ghost"], d=1)

    def test_deterministic_for_fixed_seed(self, g1):
        centers = g1.nodes_with_label("cust")
        first = partition_graph(g1, 3, centers=centers, d=1, seed=7)
        second = partition_graph(g1, 3, centers=centers, d=1, seed=7)
        assert [f.owned_centers for f in first] == [f.owned_centers for f in second]

    def test_balance_on_social_graph(self, small_pokec):
        centers = small_pokec.nodes_with_label("user")
        fragments = partition_graph(small_pokec, 4, centers=centers, d=1, seed=0)
        report = fragmentation_report(small_pokec, fragments)
        assert report.num_fragments == 4
        assert report.max_size > 0
        # Greedy balancing keeps the skew moderate (paper reports <= 14.4%).
        assert report.skew <= 0.5
        assert "fragments=4" in report.as_row()

    def test_report_counts_replication(self, g1):
        fragments = partition_graph(g1, 3, centers=g1.nodes_with_label("cust"), d=2, seed=0)
        report = fragmentation_report(g1, fragments)
        total_local = sum(fragment.graph.num_nodes for fragment in fragments)
        assert report.replicated_nodes == total_local - len(
            {node for fragment in fragments for node in fragment.graph.nodes()}
        )

    def test_empty_report(self, g1):
        report = fragmentation_report(g1, [])
        assert report.max_size == 0
        assert report.skew == 0.0


class TestExecutors:
    def _started(self, executor, g1):
        fragments = partition_graph(g1, 2, centers=g1.nodes_with_label("cust"), d=1, seed=0)
        executor.start(fragments)
        return executor, fragments

    def test_sequential_executor(self, g1):
        executor, fragments = self._started(SequentialExecutor(), g1)
        tasks = [WorkerTask(_echo_payload, f.index, i) for i, f in enumerate(fragments)]
        results, durations, metrics = executor.run(tasks)
        assert results == [(0, 0), (1, 1)]
        assert len(durations) == 2
        assert all(duration >= 0 for duration in durations)
        assert metrics == [None, None]  # REPRO_OBS collection is off

    def test_thread_pool_executor(self, g1):
        executor, fragments = self._started(ThreadPoolExecutorBackend(max_workers=2), g1)
        tasks = [WorkerTask(_echo_payload, f.index, "p") for f in fragments]
        results, durations, _metrics = executor.run(tasks)
        assert results == [(0, "p"), (1, "p")]
        assert len(durations) == 2

    def test_thread_pool_empty(self):
        assert ThreadPoolExecutorBackend().run([]) == ([], [], [])

    def test_thread_pool_propagates_worker_errors(self, g1):
        executor, fragments = self._started(ThreadPoolExecutorBackend(max_workers=2), g1)
        with pytest.raises(WorkerError) as excinfo:
            executor.run([WorkerTask(_boom, fragments[1].index, None)])
        assert excinfo.value.fragment_id == fragments[1].index
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_unknown_fragment_id(self, g1):
        executor, _fragments = self._started(SequentialExecutor(), g1)
        with pytest.raises(ExecutorError):
            executor.run([WorkerTask(_echo_payload, 99, None)])


class TestBSPRuntime:
    def _fragments(self, g1):
        return partition_graph(g1, 3, centers=g1.nodes_with_label("cust"), d=1, seed=0)

    def test_round_applies_worker_to_every_fragment(self, g1):
        runtime = BSPRuntime(self._fragments(g1))
        sizes = runtime.run_round(_num_nodes)
        assert len(sizes) == 3
        assert all(isinstance(size, int) for size in sizes)

    def test_round_ships_per_fragment_payloads(self, g1):
        runtime = BSPRuntime(self._fragments(g1))
        results = runtime.run_round(_echo_payload, ["a", "b", "c"])
        assert results == [(0, "a"), (1, "b"), (2, "c")]

    def test_payload_count_mismatch(self, g1):
        runtime = BSPRuntime(self._fragments(g1))
        with pytest.raises(ValueError):
            runtime.run_round(_echo_payload, ["only-one"])

    def test_coordinator_phase(self, g1):
        runtime = BSPRuntime(self._fragments(g1))
        total = runtime.run_round(_num_nodes, None, sum)
        assert total == sum(f.graph.num_nodes for f in self._fragments(g1))

    def test_timings_accumulate(self, g1):
        runtime = BSPRuntime(self._fragments(g1))
        runtime.start_run()
        runtime.run_round(_num_nodes)
        runtime.run_round(_num_edges)
        timings = runtime.finish_run()
        assert timings.num_rounds == 2
        assert timings.simulated_parallel_time <= timings.sequential_time + 1e-9
        assert timings.speedup >= 1.0
        assert timings.wall_time > 0
        assert 0.0 <= timings.max_worker_skew() <= 1.0

    def test_round_timing_properties(self, g1):
        runtime = BSPRuntime(self._fragments(g1))
        runtime.run_round(_num_nodes)
        round_timing = runtime.timings.rounds[0]
        assert round_timing.parallel_time == pytest.approx(
            max(round_timing.worker_times) + round_timing.coordinator_time
        )
        assert round_timing.sequential_time >= round_timing.parallel_time

    def test_num_workers(self, g1):
        assert BSPRuntime(self._fragments(g1)).num_workers == 3


class TestMessages:
    def test_payload_size(self, r1):
        message = RuleMessage(
            rule=r1,
            fragment_index=0,
            rule_matches={"a", "b"},
            antecedent_matches={"a", "b", "c"},
            qbar_matches={"d"},
        )
        assert message.payload_size() == 7 + 2 + 3 + 1
