"""Randomized equivalence: indexed matching == unindexed matching, always.

The resident :class:`repro.graph.index.FragmentIndex` is a pure memoisation,
so every matcher must return byte-identical matches and match counts with
the index on and off.  This suite drives ~50 seeded random graph/pattern
pairs through VF2, dual simulation and guided search in both modes, and
additionally runs full DMine / EIP pipelines across all three execution
backends × both index modes, requiring identical results everywhere.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.identification import identify_entities
from repro.matching import GuidedMatcher, SimulationMatcher, VF2Matcher
from repro.mining import DMineConfig, dmine
from repro.parallel.executor import BACKENDS

SEEDS = range(50)


def _workload(seed: int):
    """One seeded random (graph, patterns) pair, small enough to enumerate."""
    graph = synthetic_graph(
        num_nodes=40 + (seed % 5) * 10,
        num_edges=120 + (seed % 7) * 30,
        num_node_labels=4 + (seed % 3),
        num_edge_labels=3,
        seed=seed,
    )
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(
        graph, predicate, count=2, max_pattern_edges=3, d=2, seed=seed
    )
    patterns = [rule.antecedent for rule in rules] + [rule.pr_pattern() for rule in rules]
    return graph, patterns


def _canonical_mappings(mappings: list[dict]) -> list[tuple]:
    """A total, byte-stable representation of an enumeration of matches."""
    return sorted(
        tuple(sorted((str(k), str(v)) for k, v in mapping.items()))
        for mapping in mappings
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_vf2_indexed_equals_unindexed(seed):
    graph, patterns = _workload(seed)
    plain = VF2Matcher(use_index=False)
    indexed = VF2Matcher(use_index=True)
    for pattern in patterns:
        assert indexed.match_set(graph, pattern) == plain.match_set(graph, pattern)
        expected = plain.find_all(graph, pattern)
        actual = indexed.find_all(graph, pattern)
        assert len(actual) == len(expected)
        assert _canonical_mappings(actual) == _canonical_mappings(expected)


@pytest.mark.parametrize("seed", SEEDS)
def test_simulation_indexed_equals_unindexed(seed):
    graph, patterns = _workload(seed)
    plain = SimulationMatcher(use_index=False)
    indexed = SimulationMatcher(use_index=True)
    for pattern in patterns:
        assert indexed.match_set(graph, pattern) == plain.match_set(graph, pattern)


@pytest.mark.parametrize("seed", SEEDS)
def test_guided_indexed_equals_unindexed(seed):
    graph, patterns = _workload(seed)
    plain = GuidedMatcher(use_index=False)
    indexed = GuidedMatcher(use_index=True)
    for pattern in patterns:
        assert indexed.match_set(graph, pattern) == plain.match_set(graph, pattern)
        # Anchored enumeration must agree mapping-for-mapping as well.
        anchors = sorted(
            graph.nodes_with_label(pattern.expanded().label(pattern.expanded().x)),
            key=str,
        )[:5]
        for anchor in anchors:
            assert _canonical_mappings(
                list(indexed.iter_matches_at(graph, pattern.expanded(), anchor))
            ) == _canonical_mappings(
                list(plain.iter_matches_at(graph, pattern.expanded(), anchor))
            )


def _eip_fingerprint(result):
    return (
        sorted(map(str, result.identified)),
        sorted(
            (rule.name, round(confidence, 9))
            for rule, confidence in result.rule_confidences.items()
        ),
        sorted(
            (rule.name, tuple(sorted(map(str, matches))))
            for rule, matches in result.rule_matches.items()
        ),
    )


@pytest.mark.parametrize("seed", [0, 1])
def test_eip_equivalent_across_backends_and_index_modes(seed):
    """Match results are identical on every backend with the index on or off."""
    graph = synthetic_graph(150, 450, num_node_labels=6, num_edge_labels=4, seed=seed)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(graph, predicate, count=3, max_pattern_edges=3, d=2, seed=seed)

    fingerprints = set()
    for backend in BACKENDS:
        for use_index in (False, True):
            result = identify_entities(
                graph,
                rules,
                eta=0.5,
                num_workers=2,
                algorithm="match",
                backend=backend,
                executor_workers=2,
                use_index=use_index,
            )
            fingerprints.add(repr(_eip_fingerprint(result)))
    assert len(fingerprints) == 1


def _dmine_fingerprint(result):
    return sorted(
        (
            rule.name,
            info.support,
            round(info.confidence, 9),
            tuple(sorted(map(str, info.matches))),
        )
        for rule, info in result.all_rules.items()
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_dmine_equivalent_across_index_modes(backend):
    """DMine mines the same rules on each backend with the index on or off."""
    graph = synthetic_graph(150, 450, num_node_labels=6, num_edge_labels=4, seed=2)
    predicate = most_frequent_predicates(graph, top=1)[0]
    results = []
    for use_index in (False, True):
        config = DMineConfig(
            k=3,
            d=2,
            sigma=1,
            num_workers=2,
            max_edges=2,
            max_extensions_per_rule=6,
            max_rules_per_round=10,
            backend=backend,
            executor_workers=2,
            use_index=use_index,
        )
        results.append(_dmine_fingerprint(dmine(graph, predicate, config)))
    assert results[0] == results[1]
