"""Unit tests of the streaming update subsystem (repro.stream + batch_update).

Covers the update-ingestion layer (``Graph.batch_update`` single-tick
semantics, net-delta recording, the one-tick ``remove_node`` fix), the
delta-maintenance layer (``FragmentIndex.apply_delta`` /
``MatchStore.repair``), ``StaleIndexError`` behaviour under an open batch,
and the :class:`~repro.stream.StreamingIdentifier` lifecycle.  The seeded
equivalence sweeps live in ``tests/test_stream_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.exceptions import GraphError, StaleIndexError, StreamError
from repro.graph import FragmentIndex, Graph, registered_index
from repro.identification.eip import EIPConfig
from repro.graph.graph import GraphDelta
from repro.matching import DeltaMatcher, MatchStore, VF2Matcher
from repro.stream import (
    MaintainedMatchView,
    StreamingIdentifier,
    UpdateBatch,
    UpdateOp,
    random_update_batch,
)


def toy_graph() -> Graph:
    g = Graph(name="toy")
    g.add_node("alice", "cust")
    g.add_node("bob", "cust")
    g.add_node("carol", "cust")
    g.add_node("cafe", "restaurant")
    g.add_edge("alice", "bob", "friend")
    g.add_edge("bob", "carol", "friend")
    g.add_edge("alice", "cafe", "visit")
    g.add_edge("bob", "cafe", "visit")
    return g


class TestBatchUpdate:
    def test_single_version_bump_and_touched(self):
        g = toy_graph()
        before = g.version
        with g.batch_update() as tx:
            tx.add_edge("carol", "cafe", "visit")
            tx.remove_edge("alice", "bob", "friend")
            tx.relabel_node("carol", "vip")
        assert g.version == before + 1
        assert tx.touched == {"alice", "bob", "carol", "cafe"}
        delta = tx.delta
        assert delta.added_edges == {("carol", "cafe", "visit")}
        assert delta.removed_edges == {("alice", "bob", "friend")}
        assert delta.relabeled_nodes == {"carol"}
        assert delta.base_version == before
        assert delta.result_version == before + 1

    def test_empty_batch_does_not_tick(self):
        g = toy_graph()
        before = g.version
        with g.batch_update() as tx:
            pass
        assert g.version == before
        assert tx.delta.net_empty
        assert g.deltas_since(before) == []

    def test_cancelled_operations_are_net_empty_but_tick(self):
        g = toy_graph()
        before = g.version
        with g.batch_update() as tx:
            tx.add_edge("carol", "cafe", "visit")
            tx.remove_edge("carol", "cafe", "visit")
        assert g.version == before + 1  # work happened, consumers must look
        assert tx.delta.net_empty  # ...but nothing changed, nothing to patch
        assert g.deltas_since(before) == [tx.delta]

    def test_direct_mutations_inside_batch_are_recorded(self):
        g = toy_graph()
        with g.batch_update() as tx:
            g.add_node("dave", "cust")  # bypassing the proxy on purpose
            tx.add_edge("dave", "cafe", "visit")
        assert tx.delta.added_nodes == {"dave"}
        assert tx.delta.added_edges == {("dave", "cafe", "visit")}

    def test_nested_batches_join_the_outer_tick(self):
        g = toy_graph()
        before = g.version
        with g.batch_update() as outer:
            outer.add_edge("carol", "cafe", "visit")
            with g.batch_update() as inner:
                inner.relabel_node("carol", "vip")
            with pytest.raises(GraphError):
                inner.delta  # joined the outer batch: no delta of its own
        assert g.version == before + 1
        assert outer.touched == {"carol", "cafe"}

    def test_delta_unavailable_while_open(self):
        g = toy_graph()
        with g.batch_update() as tx:
            tx.add_edge("carol", "cafe", "visit")
            with pytest.raises(GraphError):
                tx.delta

    def test_remove_node_is_one_tick_and_touches_neighbours(self):
        g = toy_graph()
        before = g.version
        g.remove_node("bob")  # three incident edges + the node itself
        assert g.version == before + 1
        delta = g.deltas_since(before)[0]
        assert delta.removed_nodes == {"bob"}
        assert delta.touched == {"alice", "bob", "carol", "cafe"}
        assert ("alice", "bob", "friend") in delta.removed_edges

    def test_every_single_mutation_is_one_tick(self):
        g = toy_graph()
        for mutate in (
            lambda: g.add_node("dave", "cust"),
            lambda: g.add_edge("dave", "cafe", "visit"),
            lambda: g.relabel_node("dave", "vip"),
            lambda: g.remove_edge("dave", "cafe", "visit"),
            lambda: g.remove_node("dave"),
        ):
            before = g.version
            mutate()
            assert g.version == before + 1

    def test_deltas_since_chains_and_gives_up(self):
        g = toy_graph()
        base = g.version
        g.add_node("d1", "cust")
        with g.batch_update() as tx:
            tx.add_edge("d1", "cafe", "visit")
            tx.relabel_node("d1", "vip")
        chain = g.deltas_since(base)
        assert [d.base_version for d in chain] == [base, base + 1]
        assert chain[-1].result_version == g.version
        assert chain[1] is tx.delta
        # Version older than the bounded log reaches: None, rebuild needed.
        from repro.graph.graph import DELTA_LOG_SIZE

        for serial in range(DELTA_LOG_SIZE + 1):
            g.add_node(f"spam-{serial}", "cust")
        assert g.deltas_since(base) is None

    def test_failed_op_keeps_delta_truthful(self):
        g = toy_graph()
        before = g.version
        with pytest.raises(GraphError):
            with g.batch_update() as tx:
                tx.add_edge("carol", "cafe", "visit")
                tx.remove_edge("ghost", "cafe", "visit")  # raises
        # The batch closed: the applied prefix is one tick, truthfully logged.
        assert g.version == before + 1
        assert tx.delta.added_edges == {("carol", "cafe", "visit")}
        assert g.has_edge("carol", "cafe", "visit")


class TestUpdateBatchValues:
    def test_apply_returns_net_delta(self):
        g = toy_graph()
        batch = UpdateBatch.of(
            UpdateOp.add_node("dave", "cust", {"age": 33}),
            UpdateOp.add_edge("dave", "cafe", "visit"),
            UpdateOp.remove_edge("bob", "cafe", "visit"),
            UpdateOp.relabel_node("carol", "vip"),
        )
        delta = batch.apply(g)
        assert isinstance(delta, GraphDelta)
        assert delta.added_nodes == {"dave"}
        assert g.node_attrs("dave") == {"age": 33}
        assert delta.removed_edges == {("bob", "cafe", "visit")}
        assert delta.relabeled_nodes == {"carol"}
        assert len(batch) == 4 and list(batch)

    def test_describe_and_unknown_kind(self):
        batch = UpdateBatch.of(
            UpdateOp.add_edge("a", "b", "e"), UpdateOp.remove_node("c")
        )
        assert "add_edge=1" in batch.describe()
        assert "remove_node=1" in batch.describe()
        assert "remove_node('c')" == str(UpdateOp.remove_node("c"))
        with pytest.raises(StreamError):
            UpdateOp(kind="explode").apply(toy_graph())

    @pytest.mark.parametrize("seed", range(10))
    def test_random_batches_apply_cleanly(self, seed):
        g = synthetic_graph(60, 180, num_node_labels=4, num_edge_labels=3, seed=seed)
        for position in range(3):
            batch = random_update_batch(g, size=7, seed=seed * 10 + position)
            assert len(batch) == 7
            batch.apply(g)  # raises on any inconsistency

    def test_random_batch_rejects_bad_arguments(self):
        g = toy_graph()
        with pytest.raises(StreamError):
            random_update_batch(g, size=0)
        with pytest.raises(StreamError):
            random_update_batch(g, structural_fraction=1.5)
        with pytest.raises(StreamError):
            random_update_batch(Graph())

    def test_random_batch_fails_loudly_on_starved_sampling(self):
        # One node, no edges, edge churn only: no branch can ever progress.
        g = Graph()
        g.add_node("only", "x")
        with pytest.raises(StreamError, match="too small"):
            random_update_batch(g, size=1, structural_fraction=0.0)


class TestIndexUnderBatches:
    def test_raise_mode_raises_inside_open_batch(self):
        g = toy_graph()
        index = FragmentIndex(g, mode="raise")
        with pytest.raises(StaleIndexError):
            with g.batch_update() as tx:
                tx.add_node("dave", "cust")
                index.nodes_with_label("cust")

    def test_raise_mode_raises_after_batch(self):
        g = toy_graph()
        index = FragmentIndex(g, mode="raise")
        UpdateBatch.of(UpdateOp.add_node("dave", "cust")).apply(g)
        with pytest.raises(StaleIndexError):
            index.nodes_with_label("cust")

    def test_refresh_mode_refuses_half_applied_state(self):
        g = toy_graph()
        index = FragmentIndex(g)
        with pytest.raises(GraphError):
            with g.batch_update() as tx:
                tx.add_node("dave", "cust")
                index.nodes_with_label("cust")
        # After the batch closes the same index recovers by itself.
        assert "dave" in index.nodes_with_label("cust")

    def test_probe_before_any_mutation_inside_batch_is_safe(self):
        g = toy_graph()
        index = FragmentIndex(g)
        with g.batch_update():
            assert "alice" in index.nodes_with_label("cust")

    def test_refresh_patches_instead_of_rebuilding(self):
        g = synthetic_graph(80, 240, num_node_labels=4, num_edge_labels=3, seed=0)
        index = FragmentIndex(g)
        for node in sorted(g.nodes(), key=str)[:20]:
            index.sketch(node)
        UpdateBatch.of(
            UpdateOp.add_node("fresh", "L0"),
            UpdateOp.add_edge("fresh", sorted(g.nodes(), key=str)[0], "e0"),
        ).apply(g)
        index.refresh()
        assert index.statistics.builds == 1  # patched, not rebuilt
        assert index.statistics.delta_applies == 1
        assert not index.is_stale

    def test_apply_delta_rejects_wrong_base(self):
        g = toy_graph()
        index = FragmentIndex(g)
        g.add_node("d1", "cust")
        g.add_node("d2", "cust")
        deltas = g.deltas_since(index.built_version)
        assert index.apply_delta(deltas[1]) is False  # out of order
        assert index.apply_delta(deltas[0]) is True
        assert index.apply_delta(deltas[1]) is True
        assert not index.is_stale

    def test_big_delta_falls_back_to_rebuild(self):
        g = synthetic_graph(40, 120, num_node_labels=4, num_edge_labels=3, seed=1)
        index = FragmentIndex(g)
        with g.batch_update() as tx:
            for node in sorted(g.nodes(), key=str)[:30]:
                tx.relabel_node(node, "L0")
        index.refresh()
        assert index.statistics.builds == 2  # touched most of the graph
        assert not index.is_stale


class TestMatchStoreRepair:
    def _materialized(self, seed=1):
        graph = synthetic_graph(80, 240, num_node_labels=4, num_edge_labels=3, seed=seed)
        predicate = most_frequent_predicates(graph, top=1)[0]
        rule = generate_gpars(graph, predicate, count=1, max_pattern_edges=2, seed=seed)[0]
        matcher = VF2Matcher()
        store = MatchStore(graph)
        delta_matcher = DeltaMatcher(graph, matcher, store)
        pattern = rule.pr_pattern()
        candidates = sorted(graph.nodes_with_label(pattern.label(pattern.x)), key=str)
        matches, entry = delta_matcher.materialize(pattern, candidates)
        return graph, matcher, store, pattern, matches, entry

    def test_far_away_update_keeps_everything(self):
        graph, matcher, store, pattern, matches, entry = self._materialized()
        graph.add_node("far-away-island", "somewhere")
        kept = store.repair(matcher)
        assert kept == 1
        repaired = store.get(pattern)
        assert repaired is entry
        assert repaired.matches == frozenset(matches)
        assert store.statistics.repair_rechecks == 0
        assert store.statistics.repaired_entries == 1

    def test_repair_requires_closed_batch(self):
        graph, matcher, store, pattern, _matches, _entry = self._materialized()
        with pytest.raises(GraphError):
            with graph.batch_update() as tx:
                tx.add_node("x1", "somewhere")
                store.repair(matcher)

    def test_outrun_log_drops_entry(self):
        graph, matcher, store, pattern, _matches, _entry = self._materialized()
        from repro.graph.graph import DELTA_LOG_SIZE

        for serial in range(DELTA_LOG_SIZE + 1):
            graph.add_node(f"spam-{serial}", "somewhere")
        kept = store.repair(matcher)
        assert kept == 0
        assert store.statistics.dropped_on_repair == 1
        assert store.get(pattern) is None

    def test_non_ball_local_pattern_drops_on_repair(self):
        from repro.pattern.pattern import Pattern

        graph = synthetic_graph(40, 120, num_node_labels=3, num_edge_labels=2, seed=3)
        labels = sorted(graph.node_labels())
        disconnected = Pattern(
            nodes={"x": labels[0], "y": labels[1], "v1": labels[1]},
            edges=[("x", "v1", "e0")],
            x="x",
            y="y",  # y is free: matched against the whole label index
        )
        matcher = VF2Matcher()
        store = MatchStore(graph)
        delta_matcher = DeltaMatcher(graph, matcher, store)
        _, entry = delta_matcher.materialize(
            disconnected, sorted(graph.nodes_with_label(labels[0]), key=str)
        )
        assert entry is not None and entry.repair_radius is None
        graph.add_node("new-node", labels[1])
        assert store.repair(matcher) == 0
        assert store.get(disconnected) is None


class TestStreamingIdentifierLifecycle:
    def _workload(self, seed=0):
        graph = synthetic_graph(100, 300, num_node_labels=5, num_edge_labels=3, seed=seed)
        predicate = most_frequent_predicates(graph, top=1)[0]
        rules = generate_gpars(graph, predicate, count=3, max_pattern_edges=3, d=2, seed=seed)
        return graph, rules

    def test_rejects_unknown_algorithm(self):
        graph, rules = self._workload()
        with pytest.raises(StreamError):
            StreamingIdentifier(graph, rules, algorithm="disvf2")

    def test_edged_free_component_is_maintained_via_component_census(self):
        graph, _rules = self._workload()
        from repro.pattern.pattern import Pattern
        from repro.pattern.gpar import GPAR

        predicate = most_frequent_predicates(graph, top=1)[0]
        x_label = predicate.label(predicate.x)
        y_label = predicate.label(predicate.y)
        # A disconnected part that carries an edge has no bounded ball and
        # no label census — the coordinator-held component census maintains
        # it against the authoritative graph instead of rejecting it.
        edged_free = GPAR(
            Pattern(
                nodes={"x": x_label, "y": y_label, "v1": x_label, "v2": y_label},
                edges=[("x", "v1", "e0"), ("y", "v2", "e0")],
                x="x",
                y="y",
            ),
            consequent_label=predicate.edges()[0].label,
            validate=False,
        )
        config = EIPConfig(eta=0.5, num_workers=2)
        with StreamingIdentifier(graph, [edged_free], config=config) as identifier:
            assert edged_free in identifier._census_parts
            entry = identifier._census_plan.entries[0]
            assert entry.components, "edge-carrying free part takes the component route"
            for _ in range(2):
                identifier.apply(random_update_batch(graph, size=6, seed=11))
                maintained = identifier.result
                fresh = identifier.recompute()
                assert maintained.identified == fresh.identified
                assert maintained.rule_confidences == fresh.rule_confidences

    def test_free_y_rule_is_maintained_via_census(self):
        graph, _rules = self._workload()
        from repro.pattern.pattern import Pattern
        from repro.pattern.gpar import GPAR

        predicate = most_frequent_predicates(graph, top=1)[0]
        x_label = predicate.label(predicate.x)
        y_label = predicate.label(predicate.y)
        free_y = GPAR(
            Pattern(
                nodes={"x": x_label, "y": y_label, "v1": x_label},
                edges=[("x", "v1", "e0")],
                x="x",
                y="y",
            ),
            consequent_label=predicate.edges()[0].label,
            validate=False,
        )
        with StreamingIdentifier(graph, [free_y], eta=0.5, num_workers=2) as identifier:
            assert free_y in identifier._census_parts
            identifier.apply(random_update_batch(graph, size=5, seed=3))
            identifier.result  # maintained without StreamError

    def test_external_mutation_is_detected(self):
        graph, rules = self._workload()
        with StreamingIdentifier(graph, rules, eta=0.5, num_workers=2) as identifier:
            identifier.result  # fine
            graph.add_node("sneaky", "outsider")
            with pytest.raises(StreamError):
                identifier.result
            with pytest.raises(StreamError):
                identifier.apply(UpdateBatch.of(UpdateOp.remove_node("sneaky")))

    def test_closed_identifier_rejects_apply(self):
        graph, rules = self._workload()
        identifier = StreamingIdentifier(graph, rules, eta=0.5, num_workers=2)
        identifier.close()
        identifier.close()  # idempotent
        with pytest.raises(StreamError):
            identifier.apply(random_update_batch(graph, size=3, seed=1))

    def test_worker_index_is_patched_not_rebuilt(self):
        graph, rules = self._workload()
        with StreamingIdentifier(graph, rules, eta=0.5, num_workers=2) as identifier:
            fragment_graphs = [fragment.graph for fragment in identifier.fragments]
            indexes = [registered_index(g) for g in fragment_graphs]
            assert all(index is not None for index in indexes)
            builds_before = [index.statistics.builds for index in indexes]
            identifier.apply(random_update_batch(graph, size=5, seed=7))
            assert [index.statistics.builds for index in indexes] == builds_before
            assert any(index.statistics.delta_applies > 0 for index in indexes)

    def test_maintained_view_rejects_unknown_pattern(self):
        graph, rules = self._workload()
        view = MaintainedMatchView(graph, [rules[0].pr_pattern()], VF2Matcher())
        with pytest.raises(StreamError):
            view.match_set(rules[1].pr_pattern())

    def test_maintained_view_rejects_non_enumerating_matcher(self):
        from repro.matching import SimulationMatcher

        graph, rules = self._workload()
        with pytest.raises(StreamError):
            MaintainedMatchView(graph, [rules[0].pr_pattern()], SimulationMatcher())
