"""Tests for isomorphism grouping, bisimulation and canonical codes."""

import pytest

from repro.pattern import (
    GPAR,
    Pattern,
    are_bisimilar,
    are_isomorphic,
    canonical_code,
    group_automorphic,
)
from repro.pattern.automorphism import deduplicate, gpars_automorphic


def _rule(nodes, edges, x="x", y="y", consequent="visit", name="R"):
    return GPAR(Pattern(nodes, edges, x=x, y=y), consequent, name=name, validate=False)


@pytest.fixture
def rule_a():
    return _rule(
        {"x": "cust", "f": "cust", "y": "restaurant"},
        [("x", "f", "friend"), ("f", "y", "visit")],
    )


@pytest.fixture
def rule_a_renamed():
    """Same structure as rule_a but with different internal node ids."""
    return _rule(
        {"x": "cust", "buddy": "cust", "y": "restaurant"},
        [("x", "buddy", "friend"), ("buddy", "y", "visit")],
    )


@pytest.fixture
def rule_b():
    """Different structure: the friend edge points the other way."""
    return _rule(
        {"x": "cust", "f": "cust", "y": "restaurant"},
        [("f", "x", "friend"), ("f", "y", "visit")],
    )


class TestIsomorphism:
    def test_renamed_patterns_are_isomorphic(self, rule_a, rule_a_renamed):
        assert are_isomorphic(rule_a.pr_pattern(), rule_a_renamed.pr_pattern())
        assert gpars_automorphic(rule_a, rule_a_renamed)

    def test_different_structure_not_isomorphic(self, rule_a, rule_b):
        assert not are_isomorphic(rule_a.pr_pattern(), rule_b.pr_pattern())

    def test_designated_nodes_must_correspond(self):
        first = Pattern(
            {"x": "cust", "f": "cust"}, [("x", "f", "friend")], x="x", y=None
        )
        second = Pattern(
            {"x": "cust", "f": "cust"}, [("x", "f", "friend")], x="f", y=None
        )
        assert not are_isomorphic(first, second)

    def test_copy_expansion_respected(self, r1):
        # The same rule compared against itself must of course be isomorphic,
        # including the expansion of its 3-copies node.
        assert are_isomorphic(r1.pr_pattern(), r1.pr_pattern())

    def test_size_mismatch_fast_reject(self, rule_a):
        bigger = _rule(
            {"x": "cust", "f": "cust", "g": "cust", "y": "restaurant"},
            [("x", "f", "friend"), ("f", "g", "friend"), ("f", "y", "visit")],
        )
        assert not are_isomorphic(rule_a.pr_pattern(), bigger.pr_pattern())

    def test_different_consequent_not_automorphic(self, rule_a):
        other = _rule(
            {"x": "cust", "f": "cust", "y": "restaurant"},
            [("x", "f", "friend"), ("f", "y", "visit")],
            consequent="like",
        )
        assert not gpars_automorphic(rule_a, other)


class TestBisimulation:
    def test_renamed_patterns_are_bisimilar(self, rule_a, rule_a_renamed):
        assert are_bisimilar(rule_a.pr_pattern(), rule_a_renamed.pr_pattern())

    def test_non_bisimilar_implies_non_automorphic(self, rule_a, rule_b):
        """Lemma 4: if not bisimilar then not automorphic."""
        if not are_bisimilar(rule_a.pr_pattern(), rule_b.pr_pattern()):
            assert not are_isomorphic(rule_a.pr_pattern(), rule_b.pr_pattern())

    def test_label_mismatch_not_bisimilar(self, rule_a):
        other = _rule(
            {"x": "cust", "f": "city", "y": "restaurant"},
            [("x", "f", "friend"), ("f", "y", "visit")],
        )
        assert not are_bisimilar(rule_a.pr_pattern(), other.pr_pattern())

    def test_bisimilar_but_not_isomorphic(self):
        """Bisimulation is coarser than isomorphism (copy counts collapse)."""
        one = Pattern(
            {"x": "cust", "r": "restaurant"}, [("x", "r", "like")], x="x"
        )
        two = Pattern(
            {"x": "cust", "r1": "restaurant", "r2": "restaurant"},
            [("x", "r1", "like"), ("x", "r2", "like")],
            x="x",
        )
        assert are_bisimilar(one, two)
        assert not are_isomorphic(one, two)


class TestCanonicalCode:
    def test_same_code_for_renamed(self, rule_a, rule_a_renamed):
        assert canonical_code(rule_a.pr_pattern()) == canonical_code(
            rule_a_renamed.pr_pattern()
        )

    def test_different_code_for_different_structure(self, rule_a, rule_b):
        assert canonical_code(rule_a.pr_pattern()) != canonical_code(rule_b.pr_pattern())

    def test_code_is_deterministic(self, r1):
        assert canonical_code(r1.pr_pattern()) == canonical_code(r1.pr_pattern())


class TestGrouping:
    def test_group_automorphic(self, rule_a, rule_a_renamed, rule_b):
        groups = group_automorphic([rule_a, rule_a_renamed, rule_b])
        assert len(groups) == 2
        sizes = sorted(len(group) for group in groups)
        assert sizes == [1, 2]

    def test_group_without_bisimulation_filter(self, rule_a, rule_a_renamed, rule_b):
        groups = group_automorphic(
            [rule_a, rule_a_renamed, rule_b], use_bisimulation_filter=False
        )
        assert len(groups) == 2

    def test_deduplicate_keeps_one_per_group(self, rule_a, rule_a_renamed, rule_b):
        unique = deduplicate([rule_a, rule_a_renamed, rule_b])
        assert len(unique) == 2
        assert unique[0] is rule_a

    def test_grouping_paper_rules(self, g1_rules):
        groups = group_automorphic(list(g1_rules))
        # The five paper rules are pairwise non-automorphic.
        assert len(groups) == len(g1_rules)
