"""Warm-cache staleness audit (ROADMAP "warm-cache staleness audits").

Streaming keeps matchers alive across graph mutations (pool-lifetime
worker contexts), which turned three pre-existing unversioned caches into
bugs before they were ``Graph.version``-pinned.  This audit makes the
convention enforceable:

* a **registry** names every cache a matcher/solver keeps, split into
  graph-keyed caches (which MUST be version-pinned) and pattern-keyed
  caches (patterns are immutable — exempt);
* a **discovery sweep** fails when a class grows an unregistered
  dict-shaped cache attribute, or a cache-carrying class (anything with
  ``clear_caches``) is missing from the registry — adding a cache without
  auditing it breaks this file;
* a **behavioural sweep** warms every registered matcher, mutates the
  graph through update batches, and requires warm results byte-identical
  to a fresh instance's — served-stale answers fail loudly;
* a **pinning sweep** asserts every graph-keyed cache entry left behind
  after the warm re-probe carries the current ``Graph.version``.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_gpars, most_frequent_predicates, synthetic_graph
from repro.graph import graph_index, registered_index
from repro.matching import (
    GuidedMatcher,
    LocalityMatcher,
    MatchStore,
    SimulationMatcher,
    VF2Matcher,
)
from repro.stream import random_update_batch

# ----------------------------------------------------------------------
# the registry: every matcher/solver cache, by staleness discipline
# ----------------------------------------------------------------------
#: name -> (factory, graph-keyed pinned attrs, pattern-keyed exempt attrs)
AUDITED_CACHES = {
    "vf2": (lambda: VF2Matcher(), (), ()),
    "guided": (
        lambda: GuidedMatcher(),
        ("_data_sketches",),
        ("_pattern_sketches", "_pattern_graphs"),
    ),
    "simulation": (lambda: SimulationMatcher(), ("_cache",), ("_graphs",)),
    "locality": (lambda: LocalityMatcher(VF2Matcher()), ("_ball_cache",), ()),
}

#: Classes allowed to carry caches without appearing above (audited by
#: their own dedicated suites, noted here so discovery stays exhaustive).
AUDITED_ELSEWHERE = {
    "MatchStore",  # entry.version pinning: tests/test_stream.py, this file below
    "FragmentIndex",  # built_version pinning: tests/test_index.py, this file below
    "MultiPatternMatcher",  # pattern-keyed chain memo only (immutable keys)
    "ColumnarFragment",  # built_version pinning: tests/test_columnar.py, below
}

_CACHE_HINTS = ("cache", "sketch", "memo", "graphs", "store")


def _cache_like_attributes(instance) -> set[str]:
    found = set()
    for name, value in vars(instance).items():
        if not isinstance(value, dict):
            continue
        if any(hint in name.lower() for hint in _CACHE_HINTS):
            found.add(name)
    return found


def test_registry_covers_every_cache_carrying_class():
    """Any matching-layer class with clear_caches() must be audited."""
    import inspect

    import repro.matching as matching

    registered_types = {
        type(factory()) for factory, _pinned, _exempt in AUDITED_CACHES.values()
    }
    for name in matching.__all__:
        obj = getattr(matching, name)
        if not inspect.isclass(obj) or not hasattr(obj, "clear_caches"):
            continue
        assert obj in registered_types or obj.__name__ in AUDITED_ELSEWHERE, (
            f"{obj.__name__} keeps caches (has clear_caches) but is not in "
            "the staleness-audit registry; register it in test_cache_audit.py"
        )


@pytest.mark.parametrize("name", sorted(AUDITED_CACHES))
def test_no_unregistered_cache_attributes(name):
    """A new dict-shaped cache attribute must be classified before landing."""
    factory, pinned, exempt = AUDITED_CACHES[name]
    instance = factory()
    discovered = _cache_like_attributes(instance)
    unregistered = discovered - set(pinned) - set(exempt)
    assert not unregistered, (
        f"{type(instance).__name__} grew unaudited cache attributes "
        f"{sorted(unregistered)}; classify them as graph-keyed (pinned) or "
        "pattern-keyed (exempt) in test_cache_audit.py"
    )


def _workload(seed: int):
    graph = synthetic_graph(80, 240, num_node_labels=4, num_edge_labels=3, seed=seed)
    predicate = most_frequent_predicates(graph, top=1)[0]
    rules = generate_gpars(graph, predicate, count=2, max_pattern_edges=3, d=2, seed=seed)
    patterns = []
    for rule in rules:
        patterns.append(rule.antecedent)
        patterns.append(rule.pr_pattern())
    return graph, patterns


@pytest.mark.parametrize("use_index", [True, False])
@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("name", sorted(AUDITED_CACHES))
def test_warm_matcher_survives_mutations(name, seed, use_index):
    """Warm caches across update batches == a fresh matcher every time.

    ``use_index=False`` forces each matcher's *private* caches to carry the
    staleness burden (the resident index otherwise absorbs most probes) —
    the configuration that exposed the original three bugs.
    """
    factory, pinned, _exempt = AUDITED_CACHES[name]
    graph, patterns = _workload(seed)
    warm = factory()
    if hasattr(warm, "use_index"):
        warm.use_index = use_index
    if hasattr(warm, "inner") and hasattr(warm.inner, "use_index"):
        warm.inner.use_index = use_index
    if use_index:
        graph_index(graph)
    for pattern in patterns:  # warm every cache with real traffic
        warm.match_set(graph, pattern)
    for position in range(3):
        batch = random_update_batch(graph, size=6, seed=seed * 50 + position)
        batch.apply(graph)
        fresh = factory()
        if hasattr(fresh, "use_index"):
            fresh.use_index = use_index
        if hasattr(fresh, "inner") and hasattr(fresh.inner, "use_index"):
            fresh.inner.use_index = use_index
        for pattern in patterns:
            assert warm.match_set(graph, pattern) == fresh.match_set(graph, pattern), (
                name,
                seed,
                position,
                pattern,
            )
        # Pinning sweep: graph-keyed entries must follow the
        # ``(version, payload)`` convention, which is what lets the read
        # path validate the pin before serving (stale entries may linger —
        # they are revalidated, never served; the behavioural sweep above
        # is the proof).
        for attribute in pinned:
            cache = getattr(warm, attribute)
            if not use_index:
                # With the resident index off, every private cache must have
                # seen traffic — an empty cache means the audit went blind.
                assert cache, f"{name}.{attribute} was never exercised by the audit"
            for value in cache.values():
                assert isinstance(value, tuple) and isinstance(value[0], int), (
                    f"{name}.{attribute} entries must be (version, payload) "
                    f"tuples, got {type(value)}"
                )


def test_match_store_entries_are_version_pinned():
    """MatchStore (solver-side cache) evicts on any version mismatch."""
    graph, patterns = _workload(seed=1)
    store = MatchStore(graph)
    from repro.matching import DeltaMatcher

    delta_matcher = DeltaMatcher(graph, VF2Matcher(), store)
    pattern = patterns[1]  # a PR pattern: connected, enumerable
    candidates = sorted(graph.nodes_with_label(pattern.label(pattern.x)), key=str)
    _matches, entry = delta_matcher.materialize(pattern, candidates)
    assert entry is not None and entry.version == graph.version
    graph.add_node("audit-probe", "somewhere")
    assert store.get(pattern) is None, "stale entry must be evicted, not served"
    assert store.statistics.stale_entries == 1


def test_resident_index_never_serves_stale_reads():
    """FragmentIndex's version guard runs on *every* probe (both modes)."""
    graph, _patterns = _workload(seed=2)
    index = graph_index(graph)
    label = sorted(graph.node_labels())[0]
    before = set(index.nodes_with_label(label))
    fresh_node = "audit-fresh"
    graph.add_node(fresh_node, label)
    assert fresh_node in index.nodes_with_label(label)
    assert set(index.nodes_with_label(label)) == before | {fresh_node}
    assert registered_index(graph) is index


def test_frozen_neighbors_view_never_serves_stale_reads():
    """FragmentIndex.neighbors memoises frozensets but tracks mutations.

    The memo is version-pinned like every other index probe: a touched
    node's entry is dropped by the delta patch, an untouched node's entry
    is reused, and both must equal the graph's live adjacency afterwards.
    """
    graph, _patterns = _workload(seed=3)
    index = graph_index(graph)
    nodes = sorted(graph.nodes(), key=str)[:10]
    for node in nodes:  # warm the memo
        assert index.neighbors(node) == frozenset(graph.neighbors(node))
    source, target = nodes[0], nodes[-1]
    graph.add_edge(source, target, "audit-edge")
    assert target in index.neighbors(source)
    assert source in index.neighbors(target)
    for node in nodes:
        assert index.neighbors(node) == frozenset(graph.neighbors(node))


def test_resident_columnar_view_never_serves_stale_reads():
    """ColumnarFragment's version guard runs on every probe, like the index."""
    from repro.graph.columnar import columnar_view, registered_columnar

    graph, _patterns = _workload(seed=4)
    view = columnar_view(graph)
    label = sorted(graph.node_labels())[0]
    before = view.nodes_with_label(label)
    fresh_node = "audit-columnar-fresh"
    graph.add_node(fresh_node, label)
    assert view.nodes_with_label(label) == before | {fresh_node}
    assert view.built_version == graph.version
    assert registered_columnar(graph) is view
